#include "refine/check.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <set>
#include <unordered_map>

namespace ecucsp {

namespace {

std::atomic<CheckCache*> g_check_cache{nullptr};

/// compile_lts through the installed cache's LTS tier: a hit skips the
/// exploration entirely (the dominant cost of every check below).
Lts compile_or_load(Context& ctx, ProcessRef root, std::size_t max_states,
                    CancelToken* cancel) {
  CheckCache* const cache = g_check_cache.load(std::memory_order_acquire);
  if (cache) {
    if (auto lts = cache->lookup_lts(ctx, root, max_states)) {
      return std::move(*lts);
    }
  }
  Lts lts = compile_lts(ctx, root, max_states, cancel);
  if (cache) cache->store_lts(ctx, root, max_states, lts);
  return lts;
}

}  // namespace

CheckCache* set_check_cache(CheckCache* cache) {
  return g_check_cache.exchange(cache, std::memory_order_acq_rel);
}

CheckCache* check_cache() {
  return g_check_cache.load(std::memory_order_acquire);
}

std::string to_string(Model m) {
  switch (m) {
    case Model::Traces:
      return "T";
    case Model::Failures:
      return "F";
    case Model::FailuresDivergences:
      return "FD";
  }
  return "?";
}

std::string format_trace(const Context& ctx, const std::vector<EventId>& trace) {
  std::string out = "<";
  bool first = true;
  for (EventId e : trace) {
    if (!first) out += ", ";
    first = false;
    out += ctx.event_name(e);
  }
  out += ">";
  return out;
}

std::string Counterexample::describe(const Context& ctx) const {
  std::string out;
  switch (kind) {
    case Kind::TraceViolation:
      out = "trace violation: after " + format_trace(ctx, trace) +
            " the implementation performs '" + ctx.event_name(event) +
            "', which the specification forbids";
      break;
    case Kind::AcceptanceViolation: {
      out = "acceptance violation: after " + format_trace(ctx, trace) +
            " the implementation stabilises accepting only {";
      bool first = true;
      for (EventId e : impl_acceptance) {
        if (!first) out += ", ";
        first = false;
        out += ctx.event_name(e);
      }
      out += "}, refusing more than the specification allows";
      break;
    }
    case Kind::DivergenceViolation:
      out = "divergence violation: after " + format_trace(ctx, trace) +
            " the implementation can diverge but the specification cannot";
      break;
    case Kind::Deadlock:
      out = "deadlock: after " + format_trace(ctx, trace) +
            " the process can neither engage in any event nor terminate";
      break;
    case Kind::Divergence:
      out = "divergence: after " + format_trace(ctx, trace) +
            " the process can perform internal activity forever";
      break;
    case Kind::Nondeterminism:
      out = "nondeterminism: after " + format_trace(ctx, trace) +
            " the process may either accept or refuse '" +
            ctx.event_name(event) + "'";
      break;
  }
  return out;
}

namespace {

/// Breadth-first search bookkeeping for counterexample reconstruction.
struct SearchEdge {
  std::int64_t parent = -1;
  EventId event = TAU;
};

std::vector<EventId> rebuild_trace(const std::vector<SearchEdge>& edges,
                                   std::int64_t at) {
  std::vector<EventId> out;
  while (at >= 0) {
    const SearchEdge& e = edges[at];
    if (e.parent >= 0 && e.event != TAU) out.push_back(e.event);
    at = e.parent;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

EventSet visible_initials(const Lts& lts, StateId s) {
  std::vector<EventId> out;
  for (const LtsTransition& t : lts.succ[s]) {
    if (t.event != TAU) out.push_back(t.event);
  }
  return EventSet(std::move(out));
}

bool is_stable(const Lts& lts, StateId s) {
  for (const LtsTransition& t : lts.succ[s]) {
    if (t.event == TAU) return false;
  }
  return true;
}

/// Does the spec node allow a stable implementation state that accepts
/// exactly `acceptance`? True iff some minimal spec acceptance is a subset.
bool acceptance_allowed(const NormNode& spec, const EventSet& acceptance) {
  for (const EventSet& m : spec.min_acceptances) {
    if (m.subset_of(acceptance)) return true;
  }
  return false;
}

}  // namespace

namespace {

/// Consult the installed cache around `run`, which computes the verdict
/// fresh. Cancellation/state-limit exceptions propagate before anything is
/// stored, so only completed verdicts ever enter the cache.
template <typename Run>
CheckResult with_check_cache(Context& ctx, ProcessRef spec, ProcessRef impl,
                             CheckOp op, Model model, std::size_t max_states,
                             Run run) {
  CheckCache* const cache = check_cache();
  if (cache) {
    if (auto hit = cache->lookup_check(ctx, spec, impl, op, model, max_states)) {
      hit->from_cache = true;
      return std::move(*hit);
    }
  }
  CheckResult result = run();
  if (cache) cache->store_check(ctx, spec, impl, op, model, max_states, result);
  return result;
}

CheckResult refinement_uncached(Context& ctx, ProcessRef spec, ProcessRef impl,
                                Model model, std::size_t max_states,
                                CancelToken* cancel) {
  CheckResult result;

  const Lts spec_lts = compile_or_load(ctx, spec, max_states, cancel);
  const bool with_div = model == Model::FailuresDivergences;
  const NormLts norm = normalize(spec_lts, with_div, cancel);

  const Lts impl_lts = compile_or_load(ctx, impl, max_states, cancel);
  std::vector<bool> impl_diverges;
  if (with_div) impl_diverges = impl_lts.divergent_states();

  result.stats.spec_states = spec_lts.state_count();
  result.stats.spec_norm_nodes = norm.nodes.size();
  result.stats.impl_states = impl_lts.state_count();
  result.stats.impl_transitions = impl_lts.transition_count();

  struct Key {
    NormId spec;
    StateId impl;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return hash_combine(k.spec, k.impl);
    }
  };

  std::unordered_map<Key, std::size_t, KeyHash> visited;
  std::vector<Key> keys;
  std::vector<SearchEdge> edges;
  std::deque<std::size_t> frontier;

  const auto push = [&](Key k, std::int64_t parent, EventId ev) -> bool {
    if (visited.contains(k)) return false;
    const std::size_t idx = keys.size();
    visited.emplace(k, idx);
    keys.push_back(k);
    edges.push_back({parent, ev});
    frontier.push_back(idx);
    return true;
  };

  push(Key{norm.root, impl_lts.root}, -1, TAU);

  while (!frontier.empty()) {
    if (cancel) cancel->poll();
    const std::size_t idx = frontier.front();
    frontier.pop_front();
    const Key key = keys[idx];
    const NormNode& sn = norm.nodes[key.spec];

    // In the FD model a divergent specification node permits every
    // behaviour below it; prune the branch.
    if (with_div && sn.divergent) continue;

    if (with_div && impl_diverges[key.impl]) {
      result.counterexample = Counterexample{
          Counterexample::Kind::DivergenceViolation, rebuild_trace(edges, idx),
          0, {}};
      result.stats.product_states = keys.size();
      return result;
    }

    if (model != Model::Traces && is_stable(impl_lts, key.impl)) {
      const EventSet acceptance = visible_initials(impl_lts, key.impl);
      if (!acceptance_allowed(sn, acceptance)) {
        result.counterexample =
            Counterexample{Counterexample::Kind::AcceptanceViolation,
                           rebuild_trace(edges, idx), 0, acceptance};
        result.stats.product_states = keys.size();
        return result;
      }
    }

    for (const LtsTransition& t : impl_lts.succ[key.impl]) {
      if (t.event == TAU) {
        push(Key{key.spec, t.target}, static_cast<std::int64_t>(idx), TAU);
        continue;
      }
      const NormId next_spec = sn.successor(t.event);
      if (next_spec == NORM_NONE) {
        result.counterexample =
            Counterexample{Counterexample::Kind::TraceViolation,
                           rebuild_trace(edges, idx), t.event, {}};
        result.stats.product_states = keys.size();
        return result;
      }
      push(Key{next_spec, t.target}, static_cast<std::int64_t>(idx), t.event);
    }
  }

  result.stats.product_states = keys.size();
  result.passed = true;

  // Vacuity: which events does the spec actually *constrain*? An event
  // allowed in every normal node (e.g. everything under RUN(Sigma)) is
  // never restricted, so it cannot witness the property; the constrained
  // set is the union-minus-intersection of per-node initials. If the
  // implementation's reachable alphabet misses all of them, the pass is
  // trivially true — flag it rather than let a broken extraction "verify".
  {
    EventSet allowed_union;
    EventSet allowed_inter;
    bool first = true;
    for (const NormNode& n : norm.nodes) {
      allowed_union = allowed_union.set_union(n.initials);
      allowed_inter = first ? n.initials : allowed_inter.set_intersection(n.initials);
      first = false;
    }
    EventSet constrained = allowed_union.set_difference(allowed_inter);
    constrained = constrained.set_difference(EventSet{TAU, TICK});
    if (!constrained.empty()) {
      bool touched = false;
      for (StateId s = 0; s < impl_lts.state_count() && !touched; ++s) {
        for (const LtsTransition& t : impl_lts.succ[s]) {
          if (t.event != TAU && t.event != TICK && constrained.contains(t.event)) {
            touched = true;
            break;
          }
        }
      }
      result.vacuous = !touched;
    }
  }
  return result;
}

CheckResult deadlock_free_uncached(Context& ctx, ProcessRef p,
                                   std::size_t max_states,
                                   CancelToken* cancel) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();

  // States entered by a tick are successful termination, not deadlock.
  std::vector<bool> post_tick(lts.state_count(), false);
  for (StateId s = 0; s < lts.state_count(); ++s) {
    for (const LtsTransition& t : lts.succ[s]) {
      if (t.event == TICK) post_tick[t.target] = true;
    }
  }

  std::vector<SearchEdge> edges(lts.state_count());
  std::vector<bool> seen(lts.state_count(), false);
  std::deque<StateId> frontier{lts.root};
  seen[lts.root] = true;
  edges[lts.root] = {-1, TAU};
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    if (lts.succ[s].empty() && !post_tick[s] &&
        lts.term_of[s]->op() != Op::Omega) {
      std::vector<EventId> trace;
      std::int64_t at = s;
      while (at >= 0) {
        const SearchEdge& e = edges[at];
        if (e.parent >= 0 && e.event != TAU) trace.push_back(e.event);
        at = e.parent;
      }
      std::reverse(trace.begin(), trace.end());
      result.counterexample = Counterexample{Counterexample::Kind::Deadlock,
                                             std::move(trace), 0, EventSet{}};
      return result;
    }
    for (const LtsTransition& t : lts.succ[s]) {
      if (!seen[t.target]) {
        seen[t.target] = true;
        edges[t.target] = {static_cast<std::int64_t>(s), t.event};
        frontier.push_back(t.target);
      }
    }
  }
  result.passed = true;
  return result;
}

CheckResult divergence_free_uncached(Context& ctx, ProcessRef p,
                                     std::size_t max_states,
                                     CancelToken* cancel) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();
  const std::vector<bool> diverges = lts.divergent_states();

  std::vector<SearchEdge> edges(lts.state_count());
  std::vector<bool> seen(lts.state_count(), false);
  std::deque<StateId> frontier{lts.root};
  seen[lts.root] = true;
  edges[lts.root] = {-1, TAU};
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    if (diverges[s]) {
      std::vector<EventId> trace;
      std::int64_t at = s;
      while (at >= 0) {
        const SearchEdge& e = edges[at];
        if (e.parent >= 0 && e.event != TAU) trace.push_back(e.event);
        at = e.parent;
      }
      std::reverse(trace.begin(), trace.end());
      result.counterexample = Counterexample{Counterexample::Kind::Divergence,
                                             std::move(trace), 0, EventSet{}};
      return result;
    }
    for (const LtsTransition& t : lts.succ[s]) {
      if (!seen[t.target]) {
        seen[t.target] = true;
        edges[t.target] = {static_cast<std::int64_t>(s), t.event};
        frontier.push_back(t.target);
      }
    }
  }
  result.passed = true;
  return result;
}

CheckResult deterministic_uncached(Context& ctx, ProcessRef p,
                                   std::size_t max_states,
                                   CancelToken* cancel) {
  CheckResult result;
  const Lts lts = compile_or_load(ctx, p, max_states, cancel);
  result.stats.impl_states = lts.state_count();
  result.stats.impl_transitions = lts.transition_count();
  const NormLts norm = normalize(lts, /*with_divergence=*/true, cancel);
  result.stats.spec_norm_nodes = norm.nodes.size();

  // BFS over the (deterministic) normal form, tracking traces.
  std::vector<SearchEdge> edges(norm.nodes.size());
  std::vector<bool> seen(norm.nodes.size(), false);
  std::deque<NormId> frontier{norm.root};
  seen[norm.root] = true;
  edges[norm.root] = {-1, TAU};
  // Normal-form edges carry visible events only, so unlike rebuild_trace
  // there is no tau to elide: every non-root edge contributes to the trace.
  const auto trace_to = [&](NormId n) {
    std::vector<EventId> trace;
    std::int64_t at = n;
    while (at >= 0) {
      const SearchEdge& e = edges[at];
      if (e.parent >= 0) trace.push_back(e.event);
      at = e.parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  while (!frontier.empty()) {
    const NormId n = frontier.front();
    frontier.pop_front();
    const NormNode& node = norm.nodes[n];
    if (node.divergent) {
      result.counterexample = Counterexample{Counterexample::Kind::Divergence,
                                             trace_to(n), 0, EventSet{}};
      return result;
    }
    // Deterministic iff after every trace the process accepts exactly its
    // initials: a minimal acceptance missing some initial event means the
    // same trace can lead to both acceptance and refusal of that event.
    for (const EventSet& m : node.min_acceptances) {
      if (m == node.initials) continue;
      const EventSet missing = node.initials.set_difference(m);
      if (!missing.empty()) {
        result.counterexample =
            Counterexample{Counterexample::Kind::Nondeterminism, trace_to(n),
                           *missing.begin(), m};
        return result;
      }
    }
    for (const auto& [event, target] : node.succ) {
      if (!seen[target]) {
        seen[target] = true;
        edges[target] = {static_cast<std::int64_t>(n), event};
        frontier.push_back(target);
      }
    }
  }
  result.passed = true;
  return result;
}

}  // namespace

CheckResult check_refinement(Context& ctx, ProcessRef spec, ProcessRef impl,
                             Model model, std::size_t max_states,
                             CancelToken* cancel) {
  return with_check_cache(
      ctx, spec, impl, CheckOp::Refinement, model, max_states, [&] {
        return refinement_uncached(ctx, spec, impl, model, max_states, cancel);
      });
}

CheckResult check_deadlock_free(Context& ctx, ProcessRef p,
                                std::size_t max_states, CancelToken* cancel) {
  return with_check_cache(
      ctx, nullptr, p, CheckOp::DeadlockFree, Model::Traces, max_states,
      [&] { return deadlock_free_uncached(ctx, p, max_states, cancel); });
}

CheckResult check_divergence_free(Context& ctx, ProcessRef p,
                                  std::size_t max_states,
                                  CancelToken* cancel) {
  return with_check_cache(
      ctx, nullptr, p, CheckOp::DivergenceFree, Model::Traces, max_states,
      [&] { return divergence_free_uncached(ctx, p, max_states, cancel); });
}

CheckResult check_deterministic(Context& ctx, ProcessRef p,
                                std::size_t max_states, CancelToken* cancel) {
  return with_check_cache(
      ctx, nullptr, p, CheckOp::Deterministic, Model::Traces, max_states,
      [&] { return deterministic_uncached(ctx, p, max_states, cancel); });
}

TraceMembership is_trace_of(Context& ctx, ProcessRef p,
                            const std::vector<EventId>& trace,
                            std::size_t max_states) {
  const Lts lts = compile_or_load(ctx, p, max_states, nullptr);
  // Frontier of LTS states reachable on the consumed prefix, tau-closed.
  std::set<StateId> frontier{lts.root};
  const auto tau_close = [&](std::set<StateId>& states) {
    std::vector<StateId> work(states.begin(), states.end());
    while (!work.empty()) {
      const StateId s = work.back();
      work.pop_back();
      for (const LtsTransition& t : lts.succ[s]) {
        if (t.event == TAU && states.insert(t.target).second) {
          work.push_back(t.target);
        }
      }
    }
  };
  tau_close(frontier);

  TraceMembership result;
  for (const EventId e : trace) {
    std::set<StateId> next;
    for (const StateId s : frontier) {
      for (const LtsTransition& t : lts.succ[s]) {
        if (t.event == e) next.insert(t.target);
      }
    }
    if (next.empty()) {
      std::vector<EventId> offered;
      for (const StateId s : frontier) {
        for (const LtsTransition& t : lts.succ[s]) {
          if (t.event != TAU) offered.push_back(t.event);
        }
      }
      result.offered = EventSet(std::move(offered));
      return result;
    }
    tau_close(next);
    frontier = std::move(next);
    ++result.accepted_prefix;
  }
  result.member = true;
  return result;
}

std::vector<std::vector<EventId>> enumerate_traces(Context& ctx, ProcessRef p,
                                                   std::size_t max_length,
                                                   std::size_t max_states) {
  const Lts lts = compile_or_load(ctx, p, max_states, nullptr);
  std::set<std::vector<EventId>> traces;
  // BFS over (state, trace) pairs, pruned by max_length; the visited set is
  // on pairs to keep this terminating on cyclic LTSs.
  std::set<std::pair<StateId, std::vector<EventId>>> seen;
  std::deque<std::pair<StateId, std::vector<EventId>>> frontier;
  frontier.emplace_back(lts.root, std::vector<EventId>{});
  seen.insert(frontier.front());
  traces.insert(std::vector<EventId>{});  // the empty trace
  while (!frontier.empty()) {
    auto [s, trace] = std::move(frontier.front());
    frontier.pop_front();
    for (const LtsTransition& t : lts.succ[s]) {
      std::vector<EventId> next = trace;
      if (t.event != TAU) {
        if (trace.size() >= max_length) continue;
        next.push_back(t.event);
        traces.insert(next);
      }
      auto key = std::make_pair(t.target, next);
      if (seen.insert(key).second) frontier.push_back(std::move(key));
    }
  }
  return {traces.begin(), traces.end()};
}

}  // namespace ecucsp
