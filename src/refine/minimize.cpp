#include "refine/minimize.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace ecucsp {

MinimizeResult minimize_strong(const Lts& lts, CancelToken* cancel) {
  const std::size_t n = lts.state_count();
  MinimizeResult result;
  result.original_states = n;
  if (n == 0) {
    result.lts.root = 0;
    return result;
  }
  if (cancel) cancel->poll_now();

  // Kanellakis–Smolka: split by transition signature (multimap event ->
  // target block) until stable. O(n^2 log n) worst case, fine for explicit
  // models.
  //
  // The initial partition is seeded by each state's outgoing *label set* —
  // always coarser than bisimilarity, so the fixpoint is unchanged, but an
  // already-normalized (deterministic, τ-free) machine stabilises in one
  // round instead of re-deriving what normalization established. The final
  // block numbering comes from the last refinement round's first-occurrence
  // scan, which depends only on the equivalence classes — so the quotient
  // is byte-identical to the unseeded computation.
  std::vector<StateId> block(n, 0);
  {
    std::map<std::set<EventId>, StateId> label_sig;
    for (StateId s = 0; s < n; ++s) {
      std::set<EventId> labels;
      for (const LtsTransition& t : lts.succ[s]) labels.insert(t.event);
      block[s] = label_sig
                     .emplace(std::move(labels),
                              static_cast<StateId>(label_sig.size()))
                     .first->second;
    }
  }
  std::size_t blocks = 0;  // != any reachable count: run at least one round
  for (;;) {
    // Signature of each state under the current partition.
    std::map<std::pair<StateId, std::set<std::pair<EventId, StateId>>>,
             StateId>
        sig_to_new;
    std::vector<StateId> next(n);
    StateId next_blocks = 0;
    for (StateId s = 0; s < n; ++s) {
      if (cancel) cancel->poll();
      std::set<std::pair<EventId, StateId>> sig;
      for (const LtsTransition& t : lts.succ[s]) {
        sig.emplace(t.event, block[t.target]);
      }
      const auto key = std::make_pair(block[s], std::move(sig));
      auto it = sig_to_new.find(key);
      if (it == sig_to_new.end()) {
        it = sig_to_new.emplace(key, next_blocks++).first;
      }
      next[s] = it->second;
    }
    const bool stable = next_blocks == blocks;
    block = std::move(next);
    blocks = next_blocks;
    if (stable) break;
  }

  // Build the quotient.
  result.block_of = block;
  result.lts.succ.assign(blocks, {});
  result.lts.term_of.assign(blocks, nullptr);
  if (!lts.omega.empty()) result.lts.omega.assign(blocks, false);
  result.lts.root = block[lts.root];
  std::vector<std::set<std::pair<EventId, StateId>>> added(blocks);
  for (StateId s = 0; s < n; ++s) {
    if (!result.lts.term_of[block[s]]) {
      result.lts.term_of[block[s]] = lts.term_of.empty() ? nullptr
                                                         : lts.term_of[s];
    }
    if (s < lts.omega.size() && lts.omega[s]) result.lts.omega[block[s]] = true;
    for (const LtsTransition& t : lts.succ[s]) {
      if (added[block[s]].emplace(t.event, block[t.target]).second) {
        result.lts.succ[block[s]].push_back({t.event, block[t.target]});
      }
    }
  }
  return result;
}

ProcessRef lts_to_process(Context& ctx, const Lts& lts,
                          const std::string& name) {
  // One parameterised definition; the argument selects the state.
  const Symbol sym = ctx.sym(name);
  // Copy the transition structure into the closure.
  const auto succ = lts.succ;
  ctx.define(name, [succ, sym](Context& cx, std::span<const Value> args) {
    const auto s = static_cast<std::size_t>(args[0].as_int());
    std::vector<ProcessRef> visible;
    std::vector<ProcessRef> tau_targets;
    for (const LtsTransition& t : succ.at(s)) {
      const ProcessRef target =
          cx.var(sym, {Value::integer(static_cast<std::int64_t>(t.target))});
      if (t.event == TAU) {
        tau_targets.push_back(target);
      } else if (t.event == TICK) {
        visible.push_back(cx.skip());
      } else {
        visible.push_back(cx.prefix(t.event, target));
      }
    }
    const ProcessRef base = cx.ext_choice(visible);  // STOP when empty
    if (tau_targets.empty()) return base;
    return cx.sliding(base, cx.int_choice(tau_targets));
  });
  return ctx.var(sym,
                 {Value::integer(static_cast<std::int64_t>(lts.root))});
}

ProcessRef compress(Context& ctx, ProcessRef p, const std::string& name,
                    std::size_t max_states, CancelToken* cancel) {
  const Lts lts = compile_lts(ctx, p, max_states, cancel);
  const MinimizeResult min = minimize_strong(lts, cancel);
  return lts_to_process(ctx, min.lts, name);
}

}  // namespace ecucsp
