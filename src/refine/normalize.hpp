// Specification normalisation (FDR's pre-step for refinement checking).
//
// Converts an LTS into a deterministic "normal form" over visible events:
// each normal node is the tau-closure of a set of source states, annotated
// with the union of its initials, its subset-minimal acceptance sets (for
// the stable-failures model) and a divergence flag (for the
// failures-divergences model).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cancel.hpp"
#include "refine/compact.hpp"
#include "refine/lts.hpp"

namespace ecucsp {

using NormId = std::uint32_t;

struct NormNode {
  /// Deterministic successor per visible event (TICK included), sorted by
  /// event id for binary search.
  std::vector<std::pair<EventId, NormId>> succ;
  /// Union of visible initials (including TICK) over the closure.
  EventSet initials;
  /// Subset-minimal acceptance sets contributed by stable members.
  /// Empty when the node has no stable member (it always diverges-in or
  /// ticks away) — such a node imposes no refusal constraints.
  std::vector<EventSet> min_acceptances;
  /// True iff some member state diverges (infinite tau path).
  bool divergent = false;

  NormId successor(EventId e) const;  // or NORM_NONE
};

inline constexpr NormId NORM_NONE = 0xffffffffu;

struct NormLts {
  NormId root = 0;
  std::vector<NormNode> nodes;
};

/// Normalise `lts`. `with_divergence` additionally computes per-node
/// divergence (needed for the FD model); it costs one SCC pass.
/// Normalisation is worst-case exponential in the source LTS (subset
/// construction), so like compile_lts it polls `cancel` per expanded node
/// and aborts with CheckCancelled when the token fires.
///
/// The compact overload is the implementation; the Lts overload converts
/// and delegates (compact_from_lts preserves state numbering and transition
/// order, so both produce the same NormLts byte for byte). Normal nodes are
/// keyed on source-state *sets* and explored in event order, so the output
/// depends only on the machine's weak semantics — which is why normalising
/// a compressed spec (check.cpp's --compress path) yields an equivalent
/// normal form.
NormLts normalize(const CompactLts& lts, bool with_divergence,
                  CancelToken* cancel = nullptr);
NormLts normalize(const Lts& lts, bool with_divergence,
                  CancelToken* cancel = nullptr);

}  // namespace ecucsp
