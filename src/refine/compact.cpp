#include "refine/compact.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace ecucsp {

// --- compression-mode plumbing -----------------------------------------------

namespace {

// Same idiom as g_check_threads in parallel.cpp: a process-wide atomic
// consulted by every check entry point whose explicit `compress` argument is
// Compression::Ambient. Installed by ScopedCheckCompression for the duration
// of a scheduler batch or a CLI run.
std::atomic<std::uint8_t> g_check_compression{
    static_cast<std::uint8_t>(Compression::None)};

}  // namespace

std::string_view to_string(Compression c) {
  switch (c) {
    case Compression::None:
      return "none";
    case Compression::Bisim:
      return "bisim";
    case Compression::Diamond:
      return "diamond";
    case Compression::Full:
      return "full";
    case Compression::Ambient:
      return "ambient";
  }
  return "?";
}

std::optional<Compression> parse_compression(std::string_view s) {
  if (s == "none") return Compression::None;
  if (s == "bisim") return Compression::Bisim;
  if (s == "diamond") return Compression::Diamond;
  if (s == "full") return Compression::Full;
  return std::nullopt;
}

Compression set_check_compression(Compression c) {
  return static_cast<Compression>(g_check_compression.exchange(
      static_cast<std::uint8_t>(c), std::memory_order_acq_rel));
}

Compression check_compression() {
  return static_cast<Compression>(
      g_check_compression.load(std::memory_order_acquire));
}

Compression resolve_check_compression(Compression requested) {
  return requested == Compression::Ambient ? check_compression() : requested;
}

// --- representation ----------------------------------------------------------

LocalEvent CompactLts::local_event(EventId e) const {
  const auto it = std::lower_bound(alphabet.begin(), alphabet.end(), e);
  if (it == alphabet.end() || *it != e) return NO_LOCAL_EVENT;
  return static_cast<LocalEvent>(it - alphabet.begin());
}

CompactLts compact_from_lts(const Lts& lts) {
  const std::size_t n = lts.state_count();
  CompactLts c;
  c.root = lts.root;

  // Intern the alphabet: sorted unique global ids. Local ids are therefore a
  // function of the *set* of events alone — stable under any transition
  // insertion order (refine_compact_test pins this).
  std::vector<EventId> alpha;
  for (const auto& row : lts.succ) {
    for (const LtsTransition& t : row) alpha.push_back(t.event);
  }
  std::sort(alpha.begin(), alpha.end());
  alpha.erase(std::unique(alpha.begin(), alpha.end()), alpha.end());
  c.alphabet = std::move(alpha);
  c.tau = c.local_event(TAU);
  c.tick = c.local_event(TICK);

  c.offsets.reserve(n + 1);
  c.events.reserve(lts.transition_count());
  c.targets.reserve(lts.transition_count());
  c.flags.assign(n, 0);
  for (StateId s = 0; s < n; ++s) {
    for (const LtsTransition& t : lts.succ[s]) {
      c.events.push_back(c.local_event(t.event));
      c.targets.push_back(t.target);
      if (t.event == TICK) c.flags[t.target] |= CompactLts::kPostTick;
    }
    c.offsets.push_back(static_cast<std::uint32_t>(c.events.size()));
    // Prefer the compile-time omega record: term_of pointers dangle once
    // the owning Context dies, and compiled structures must stay usable as
    // plain data. Hand-built machines (no omega vector) keep terms alive.
    const bool omega = s < lts.omega.size()
                           ? lts.omega[s]
                           : s < lts.term_of.size() && lts.term_of[s] &&
                                 lts.term_of[s]->op() == Op::Omega;
    if (omega) c.flags[s] |= CompactLts::kOmega;
  }
  return c;
}

Lts compact_to_lts(const CompactLts& c) {
  Lts lts;
  lts.root = c.root;
  lts.succ.resize(c.state_count());
  lts.omega.reserve(c.state_count());
  for (StateId s = 0; s < c.state_count(); ++s) {
    lts.succ[s].reserve(c.degree(s));
    for (std::uint32_t k = c.begin(s); k < c.end(s); ++k) {
      lts.succ[s].push_back({c.global_event(c.events[k]), c.targets[k]});
    }
    lts.omega.push_back(c.is_omega(s));
  }
  return lts;
}

namespace {

/// τ-SCC decomposition (iterative Kosaraju restricted to τ edges).
/// scc[s] is the component id; cyclic[id] says the component contains a τ
/// edge (a non-trivial cycle or a τ self-loop).
struct TauSccs {
  std::vector<std::int64_t> scc;
  std::vector<bool> cyclic;
};

TauSccs tau_sccs(const CompactLts& c) {
  const std::size_t n = c.state_count();
  TauSccs out;
  out.scc.assign(n, -1);
  if (c.tau == NO_LOCAL_EVENT) {
    // τ-free machine: every state is its own trivial component.
    out.cyclic.assign(n, false);
    for (StateId s = 0; s < n; ++s) out.scc[s] = static_cast<std::int64_t>(s);
    return out;
  }

  std::vector<std::vector<StateId>> tau_succ(n);
  std::vector<std::vector<StateId>> tau_pred(n);
  for (StateId s = 0; s < n; ++s) {
    for (std::uint32_t k = c.begin(s); k < c.end(s); ++k) {
      if (c.events[k] == c.tau) {
        tau_succ[s].push_back(c.targets[k]);
        tau_pred[c.targets[k]].push_back(s);
      }
    }
  }

  // Iterative DFS finish order.
  std::vector<StateId> order;
  order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);
  for (StateId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::vector<std::pair<StateId, std::size_t>> stack{{start, 0}};
    seen[start] = 1;
    while (!stack.empty()) {
      auto& [s, i] = stack.back();
      if (i < tau_succ[s].size()) {
        const StateId nxt = tau_succ[s][i++];
        if (!seen[nxt]) {
          seen[nxt] = 1;
          stack.emplace_back(nxt, 0);
        }
      } else {
        order.push_back(s);
        stack.pop_back();
      }
    }
  }

  // Reverse pass over the transposed graph assigns component ids.
  std::int64_t scc_count = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (out.scc[*it] >= 0) continue;
    const std::int64_t id = scc_count++;
    std::vector<StateId> stack{*it};
    out.scc[*it] = id;
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      for (StateId pre : tau_pred[s]) {
        if (out.scc[pre] < 0) {
          out.scc[pre] = id;
          stack.push_back(pre);
        }
      }
    }
  }
  out.cyclic.assign(static_cast<std::size_t>(scc_count), false);
  for (StateId s = 0; s < n; ++s) {
    for (StateId nxt : tau_succ[s]) {
      if (out.scc[nxt] == out.scc[s]) out.cyclic[out.scc[s]] = true;
    }
  }
  return out;
}

using Row = std::vector<std::pair<LocalEvent, StateId>>;
using Rows = std::vector<Row>;

/// Rebuild a CompactLts from per-state edge rows: restrict to the part
/// reachable from `root` (BFS discovery order becomes the new numbering, so
/// renumbering is deterministic and cache-friendly), sort each row by
/// (event, target) as the canonical edge order of reduced machines, and
/// recompute the post-tick flags from the surviving TICK edges. The
/// alphabet (and hence every local event id) carries over from `proto`.
CompactLts finalize(StateId root, const Rows& rows,
                    const std::vector<std::uint8_t>& flags,
                    const CompactLts& proto) {
  const std::size_t n = rows.size();
  std::vector<StateId> renumber(n, 0xffffffffu);
  std::vector<StateId> kept;
  kept.reserve(n);
  std::deque<StateId> frontier{root};
  renumber[root] = 0;
  kept.push_back(root);
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    for (const auto& [e, t] : rows[s]) {
      if (renumber[t] == 0xffffffffu) {
        renumber[t] = static_cast<StateId>(kept.size());
        kept.push_back(t);
        frontier.push_back(t);
      }
    }
  }

  CompactLts out;
  out.root = 0;
  out.alphabet = proto.alphabet;
  out.tau = proto.tau;
  out.tick = proto.tick;
  out.flags.reserve(kept.size());
  out.offsets.reserve(kept.size() + 1);
  Row row;
  for (const StateId s : kept) {
    row.clear();
    for (const auto& [e, t] : rows[s]) row.emplace_back(e, renumber[t]);
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (const auto& [e, t] : row) {
      out.events.push_back(e);
      out.targets.push_back(t);
    }
    out.offsets.push_back(static_cast<std::uint32_t>(out.events.size()));
    out.flags.push_back(
        static_cast<std::uint8_t>(flags[s] & ~CompactLts::kPostTick));
  }
  if (out.tick != NO_LOCAL_EVENT) {
    for (std::size_t k = 0; k < out.events.size(); ++k) {
      if (out.events[k] == out.tick) {
        out.flags[out.targets[k]] |= CompactLts::kPostTick;
      }
    }
  }
  return out;
}

/// Strong-bisimulation quotient (Kanellakis–Smolka partition refinement,
/// the minimize.cpp algorithm on the compact form). The initial partition
/// separates terminal classes — Omega, post-tick and deadlocked states have
/// identical (empty) transition signatures but different meaning to the
/// deadlock check, so they must never share a block.
CompactLts bisim_quotient(const CompactLts& c, CancelToken* cancel) {
  const std::size_t n = c.state_count();
  if (n == 0) return c;
  if (cancel) cancel->poll_now();

  std::vector<StateId> block(n);
  for (StateId s = 0; s < n; ++s) {
    block[s] = c.degree(s) > 0 ? 0
                               : 1 + (c.is_omega(s) ? 1u : 0u) +
                                     (c.is_post_tick(s) ? 2u : 0u);
  }
  std::size_t blocks = 0;  // force at least one refinement round
  for (;;) {
    std::map<std::pair<StateId, std::set<std::pair<LocalEvent, StateId>>>,
             StateId>
        sig_to_new;
    std::vector<StateId> next(n);
    StateId next_blocks = 0;
    for (StateId s = 0; s < n; ++s) {
      if (cancel) cancel->poll();
      std::set<std::pair<LocalEvent, StateId>> sig;
      for (std::uint32_t k = c.begin(s); k < c.end(s); ++k) {
        sig.emplace(c.events[k], block[c.targets[k]]);
      }
      const auto key = std::make_pair(block[s], std::move(sig));
      auto it = sig_to_new.find(key);
      if (it == sig_to_new.end()) {
        it = sig_to_new.emplace(key, next_blocks++).first;
      }
      next[s] = it->second;
    }
    const bool stable = next_blocks == blocks;
    block = std::move(next);
    blocks = next_blocks;
    if (stable) break;
  }
  if (blocks == n) return c;  // already minimal: skip the rebuild

  Rows rows(n);
  std::vector<std::uint8_t> flags(n, 0);
  // Address blocks through their first member so finalize's reachability
  // walk can run over original state ids.
  std::vector<StateId> rep(blocks, 0xffffffffu);
  for (StateId s = 0; s < n; ++s) {
    if (rep[block[s]] == 0xffffffffu) rep[block[s]] = s;
  }
  for (StateId s = 0; s < n; ++s) {
    const StateId r = rep[block[s]];
    flags[r] |= c.flags[s];
    for (std::uint32_t k = c.begin(s); k < c.end(s); ++k) {
      rows[r].emplace_back(c.events[k], rep[block[c.targets[k]]]);
    }
  }
  return finalize(rep[block[c.root]], rows, flags, c);
}

/// Diamond elimination: τ-SCC contraction, inert single-τ chain collapse,
/// and strong-confluence τ-priorisation. DESIGN.md §12 carries the
/// verdict-preservation argument for each step.
CompactLts diamond_reduce(const CompactLts& c, CancelToken* cancel) {
  if (c.tau == NO_LOCAL_EVENT || c.state_count() == 0) return c;  // τ-free
  if (cancel) cancel->poll_now();
  const std::size_t n = c.state_count();

  // Pass 1 — contract each τ-SCC to its minimum-id member. A cyclic
  // component keeps a single τ self-loop so divergence survives exactly.
  const TauSccs sccs = tau_sccs(c);
  std::vector<StateId> rep_of_scc(sccs.cyclic.size(), 0xffffffffu);
  for (StateId s = 0; s < n; ++s) {
    StateId& r = rep_of_scc[sccs.scc[s]];
    if (r == 0xffffffffu) r = s;  // states scanned in increasing id order
  }
  Rows rows(n);
  std::vector<std::uint8_t> flags(n, 0);
  std::vector<std::uint8_t> has_self_tau(n, 0);
  for (StateId s = 0; s < n; ++s) {
    const StateId r = rep_of_scc[sccs.scc[s]];
    flags[r] |= c.flags[s];
    for (std::uint32_t k = c.begin(s); k < c.end(s); ++k) {
      const StateId t = c.targets[k];
      if (c.events[k] == c.tau && sccs.scc[s] == sccs.scc[t]) {
        if (!has_self_tau[r]) {
          has_self_tau[r] = 1;
          rows[r].emplace_back(c.tau, r);
        }
        continue;
      }
      rows[r].emplace_back(c.events[k], rep_of_scc[sccs.scc[t]]);
    }
  }
  CompactLts step = finalize(rep_of_scc[sccs.scc[c.root]], rows, flags, c);

  // Pass 2 — collapse inert τ chains: a state whose only move is a single τ
  // (not a self-loop; those were handled above) adds nothing, so incoming
  // edges skip straight to its target. Post-tick states are exempt:
  // redirecting a TICK edge would transplant "terminated" status onto the
  // target and could mask a deadlock there. Chains cannot cycle (a τ cycle
  // would have been contracted), so union-find resolution terminates.
  {
    const std::size_t m = step.state_count();
    std::vector<StateId> parent(m);
    for (StateId s = 0; s < m; ++s) parent[s] = s;
    for (StateId s = 0; s < m; ++s) {
      if (step.degree(s) == 1 && step.events[step.begin(s)] == step.tau &&
          step.targets[step.begin(s)] != s && !step.is_post_tick(s)) {
        parent[s] = step.targets[step.begin(s)];
      }
    }
    const auto find = [&](StateId s) {
      while (parent[s] != s) s = parent[s];
      return s;
    };
    Rows rows2(m);
    std::vector<std::uint8_t> flags2(m, 0);
    for (StateId s = 0; s < m; ++s) {
      flags2[s] = step.flags[s];
      if (parent[s] != s) continue;  // collapsed away
      for (std::uint32_t k = step.begin(s); k < step.end(s); ++k) {
        rows2[s].emplace_back(step.events[k], find(step.targets[k]));
      }
    }
    step = finalize(find(step.root), rows2, flags2, step);
  }
  if (cancel) cancel->poll_now();

  // Pass 3 — τ-priorisation of strongly confluent internal moves (partial-
  // order reduction). A τ edge s --τ--> s2 is strongly confluent when every
  // other move s --e--> t can be matched from s2 by an e-move to t itself
  // or to some t' that t reaches by one τ step (the one-step diamond). At a
  // non-divergent state with such an edge the other moves are merely
  // postponed, never lost, so the state is replaced by the τ step alone.
  // Divergent states are exempt: dropping their other τ options could
  // change which divergences are reachable.
  {
    const std::size_t m = step.state_count();
    const std::vector<bool> div = step.divergent_states();
    const auto has_edge = [&](StateId s, LocalEvent e, StateId t) {
      const auto lo = step.events.begin() + step.begin(s);
      const auto hi = step.events.begin() + step.end(s);
      // Rows are (event, target)-sorted by finalize; scan the event run.
      auto it = std::lower_bound(lo, hi, e);
      for (; it != hi && *it == e; ++it) {
        if (step.targets[static_cast<std::size_t>(it - step.events.begin())] ==
            t) {
          return true;
        }
      }
      return false;
    };
    Rows rows3(m);
    std::vector<std::uint8_t> flags3(step.flags.begin(), step.flags.end());
    for (StateId s = 0; s < m; ++s) {
      if (cancel) cancel->poll();
      Row& row = rows3[s];
      for (std::uint32_t k = step.begin(s); k < step.end(s); ++k) {
        row.emplace_back(step.events[k], step.targets[k]);
      }
      if (div[s]) continue;
      for (std::uint32_t k = step.begin(s); k < step.end(s); ++k) {
        if (step.events[k] != step.tau) break;  // τ sorts first
        const StateId s2 = step.targets[k];
        if (s2 == s) continue;
        bool confluent = true;
        for (std::uint32_t j = step.begin(s); j < step.end(s) && confluent;
             ++j) {
          if (j == k) continue;
          const LocalEvent e = step.events[j];
          const StateId t = step.targets[j];
          bool matched = false;
          const auto lo = step.events.begin() + step.begin(s2);
          const auto hi = step.events.begin() + step.end(s2);
          auto it = std::lower_bound(lo, hi, e);
          for (; it != hi && *it == e && !matched; ++it) {
            const StateId t2 = step.targets[static_cast<std::size_t>(
                it - step.events.begin())];
            matched = t2 == t || has_edge(t, step.tau, t2);
          }
          confluent = matched;
        }
        if (confluent) {
          row.assign(1, {step.tau, s2});
          break;
        }
      }
    }
    step = finalize(step.root, rows3, flags3, step);
  }
  return step;
}

}  // namespace

std::vector<bool> CompactLts::divergent_states() const {
  const std::size_t n = state_count();
  std::vector<bool> diverges(n, false);
  if (tau == NO_LOCAL_EVENT) return diverges;  // τ-free: nothing diverges

  const TauSccs sccs = tau_sccs(*this);
  // A state diverges iff some τ-path reaches a cyclic τ-SCC: seed the
  // cyclic components, then flow backwards over τ edges.
  std::deque<StateId> frontier;
  for (StateId s = 0; s < n; ++s) {
    if (sccs.cyclic[sccs.scc[s]]) {
      diverges[s] = true;
      frontier.push_back(s);
    }
  }
  std::vector<std::vector<StateId>> tau_pred(n);
  for (StateId s = 0; s < n; ++s) {
    for (std::uint32_t k = begin(s); k < end(s); ++k) {
      if (events[k] == tau) tau_pred[targets[k]].push_back(s);
    }
  }
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    for (StateId pre : tau_pred[s]) {
      if (!diverges[pre]) {
        diverges[pre] = true;
        frontier.push_back(pre);
      }
    }
  }
  return diverges;
}

CompactLts compress_compact(const CompactLts& in, Compression mode,
                            ReductionStats* stats, CancelToken* cancel) {
  const Compression m = resolve_check_compression(mode);
  if (stats) {
    stats->states_in = in.state_count();
    stats->transitions_in = in.transition_count();
  }
  CompactLts out;
  switch (m) {
    case Compression::None:
    case Compression::Ambient:  // resolve returned the ambient value already
      out = in;
      break;
    case Compression::Bisim:
      out = bisim_quotient(in, cancel);
      break;
    case Compression::Diamond:
      out = diamond_reduce(in, cancel);
      break;
    case Compression::Full:
      out = bisim_quotient(diamond_reduce(in, cancel), cancel);
      break;
  }
  if (stats) {
    stats->states_out = out.state_count();
    stats->transitions_out = out.transition_count();
  }
  return out;
}

}  // namespace ecucsp
