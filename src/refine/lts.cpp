#include "refine/lts.hpp"

#include <deque>

namespace ecucsp {

Lts compile_lts(Context& ctx, ProcessRef root, std::size_t max_states,
                CancelToken* cancel) {
  Lts lts;
  if (cancel) cancel->poll_now();
  std::unordered_map<ProcessRef, StateId> ids;

  const auto state_of = [&](ProcessRef term) -> StateId {
    term = ctx.canonical(term);
    if (auto it = ids.find(term); it != ids.end()) return it->second;
    if (ids.size() >= max_states) throw StateLimitExceeded(max_states);
    const StateId id = static_cast<StateId>(ids.size());
    ids.emplace(term, id);
    lts.succ.emplace_back();
    lts.term_of.push_back(term);
    return id;
  };

  lts.root = state_of(root);
  std::deque<StateId> frontier{lts.root};
  // term_of grows as we discover states; process it like a worklist.
  std::vector<bool> expanded;
  while (!frontier.empty()) {
    if (cancel) cancel->poll();
    const StateId s = frontier.front();
    frontier.pop_front();
    if (s < expanded.size() && expanded[s]) continue;
    if (expanded.size() <= s) expanded.resize(s + 1, false);
    expanded[s] = true;
    for (const Transition& t : ctx.transitions(lts.term_of[s])) {
      const StateId dst = state_of(t.target);
      lts.succ[s].push_back({t.event, dst});
      if (dst >= expanded.size() || !expanded[dst]) frontier.push_back(dst);
    }
  }
  return lts;
}

std::vector<bool> Lts::divergent_states() const {
  // Tarjan-free approach: iteratively mark states that can take a tau step
  // into the "can diverge" set, starting from states on tau-cycles.
  //
  // Step 1: find states on tau-cycles with Kosaraju-style SCCs restricted to
  // tau edges, using an iterative DFS to avoid deep recursion.
  const std::size_t n = succ.size();
  std::vector<std::vector<StateId>> tau_succ(n);
  std::vector<std::vector<StateId>> tau_pred(n);
  for (StateId s = 0; s < n; ++s) {
    for (const LtsTransition& t : succ[s]) {
      if (t.event == TAU) {
        tau_succ[s].push_back(t.target);
        tau_pred[t.target].push_back(s);
      }
    }
  }

  // Iterative DFS finish order.
  std::vector<StateId> order;
  order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);
  for (StateId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::vector<std::pair<StateId, std::size_t>> stack{{start, 0}};
    seen[start] = 1;
    while (!stack.empty()) {
      auto& [s, i] = stack.back();
      if (i < tau_succ[s].size()) {
        const StateId nxt = tau_succ[s][i++];
        if (!seen[nxt]) {
          seen[nxt] = 1;
          stack.emplace_back(nxt, 0);
        }
      } else {
        order.push_back(s);
        stack.pop_back();
      }
    }
  }

  // Reverse pass over transposed graph assigns SCC ids.
  std::vector<std::int64_t> scc(n, -1);
  std::int64_t scc_count = 0;
  std::vector<std::size_t> scc_size;
  std::vector<bool> scc_has_edge;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (scc[*it] >= 0) continue;
    const std::int64_t id = scc_count++;
    scc_size.push_back(0);
    scc_has_edge.push_back(false);
    std::vector<StateId> stack{*it};
    scc[*it] = id;
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      ++scc_size[id];
      for (StateId pre : tau_pred[s]) {
        if (scc[pre] < 0) {
          scc[pre] = id;
          stack.push_back(pre);
        }
      }
    }
  }
  for (StateId s = 0; s < n; ++s) {
    for (StateId nxt : tau_succ[s]) {
      if (scc[nxt] == scc[s]) scc_has_edge[scc[s]] = true;
    }
  }

  // A state diverges iff some tau-path reaches a cyclic tau-SCC.
  std::vector<bool> diverges(n, false);
  std::deque<StateId> frontier;
  for (StateId s = 0; s < n; ++s) {
    if (scc_has_edge[scc[s]]) {
      diverges[s] = true;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    for (StateId pre : tau_pred[s]) {
      if (!diverges[pre]) {
        diverges[pre] = true;
        frontier.push_back(pre);
      }
    }
  }
  return diverges;
}

}  // namespace ecucsp
