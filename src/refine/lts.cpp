#include "refine/lts.hpp"

#include <deque>

#include "refine/compact.hpp"

namespace ecucsp {

Lts compile_lts(Context& ctx, ProcessRef root, std::size_t max_states,
                CancelToken* cancel) {
  Lts lts;
  if (cancel) cancel->poll_now();
  std::unordered_map<ProcessRef, StateId> ids;

  const auto state_of = [&](ProcessRef term) -> StateId {
    term = ctx.canonical(term);
    if (auto it = ids.find(term); it != ids.end()) return it->second;
    if (ids.size() >= max_states) throw StateLimitExceeded(max_states);
    const StateId id = static_cast<StateId>(ids.size());
    ids.emplace(term, id);
    lts.succ.emplace_back();
    lts.term_of.push_back(term);
    return id;
  };

  lts.root = state_of(root);
  std::deque<StateId> frontier{lts.root};
  // term_of grows as we discover states; process it like a worklist.
  std::vector<bool> expanded;
  while (!frontier.empty()) {
    if (cancel) cancel->poll();
    const StateId s = frontier.front();
    frontier.pop_front();
    if (s < expanded.size() && expanded[s]) continue;
    if (expanded.size() <= s) expanded.resize(s + 1, false);
    expanded[s] = true;
    for (const Transition& t : ctx.transitions(lts.term_of[s])) {
      const StateId dst = state_of(t.target);
      lts.succ[s].push_back({t.event, dst});
      if (dst >= expanded.size() || !expanded[dst]) frontier.push_back(dst);
    }
  }
  lts.omega.reserve(lts.term_of.size());
  for (const ProcessRef term : lts.term_of) {
    lts.omega.push_back(term && term->op() == Op::Omega);
  }
  return lts;
}

std::vector<bool> Lts::divergent_states() const {
  // One canonical SCC implementation: the compact core's. Conversion is
  // O(states + transitions), noise next to the τ-SCC passes themselves.
  return compact_from_lts(*this).divergent_states();
}

}  // namespace ecucsp
