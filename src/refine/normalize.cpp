#include "refine/normalize.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

namespace ecucsp {

NormId NormNode::successor(EventId e) const {
  auto it = std::lower_bound(
      succ.begin(), succ.end(), e,
      [](const std::pair<EventId, NormId>& p, EventId ev) { return p.first < ev; });
  if (it == succ.end() || it->first != e) return NORM_NONE;
  return it->second;
}

namespace {

using StateSet = std::vector<StateId>;  // sorted unique

struct StateSetHash {
  std::size_t operator()(const StateSet& s) const {
    std::size_t seed = s.size();
    for (StateId v : s) {
      seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }
};

StateSet tau_closure(const CompactLts& lts, StateSet seed) {
  std::vector<StateId> stack(seed.begin(), seed.end());
  std::unordered_map<StateId, bool> in;
  for (StateId s : seed) in[s] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (std::uint32_t k = lts.begin(s); k < lts.end(s); ++k) {
      if (lts.events[k] != lts.tau) continue;
      const StateId t = lts.targets[k];
      if (!in[t]) {
        in[t] = true;
        stack.push_back(t);
      }
    }
  }
  StateSet out;
  out.reserve(in.size());
  for (const auto& [s, v] : in) {
    if (v) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Keep only subset-minimal acceptance sets, in canonical (size, lex) order.
/// The order must not depend on the source machine's state numbering: it is
/// part of the normal form compared across compression levels, and it feeds
/// the determinism check's first-mismatch counterexample.
std::vector<EventSet> minimise(std::vector<EventSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const EventSet& a, const EventSet& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
  std::vector<EventSet> out;
  for (const EventSet& s : sets) {
    bool dominated = false;
    for (const EventSet& kept : out) {
      if (kept.subset_of(s)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(s);
  }
  // (size, lex) sorting can leave equal duplicates adjacent; subset_of
  // already filters them (a set is a subset of its duplicate).
  return out;
}

}  // namespace

NormLts normalize(const CompactLts& lts, bool with_divergence,
                  CancelToken* cancel) {
  if (cancel) cancel->poll_now();
  std::vector<bool> diverges;
  if (with_divergence) diverges = lts.divergent_states();

  NormLts norm;
  std::unordered_map<StateSet, NormId, StateSetHash> ids;
  std::deque<StateSet> frontier;

  const auto node_of = [&](StateSet closure) -> NormId {
    if (auto it = ids.find(closure); it != ids.end()) return it->second;
    const NormId id = static_cast<NormId>(norm.nodes.size());
    ids.emplace(closure, id);
    norm.nodes.emplace_back();
    frontier.push_back(std::move(closure));
    return id;
  };

  norm.root = node_of(tau_closure(lts, {lts.root}));
  // frontier entries align with node creation order; track index separately.
  NormId next = 0;
  while (next < norm.nodes.size()) {
    if (cancel) cancel->poll();
    const StateSet closure = [&] {
      const StateSet front = frontier.front();
      frontier.pop_front();
      return front;
    }();
    NormNode& node = norm.nodes[next];
    ++next;

    // Gather visible-event moves across the closure (keyed by global event
    // id, so iteration order matches the un-interned engine exactly), and
    // acceptance sets from stable members.
    std::map<EventId, StateSet> moves;
    std::vector<EventSet> acceptances;
    bool divergent = false;
    for (StateId s : closure) {
      if (with_divergence && diverges[s]) divergent = true;
      bool stable = true;
      std::vector<EventId> offered;
      for (std::uint32_t k = lts.begin(s); k < lts.end(s); ++k) {
        if (lts.events[k] == lts.tau) {
          stable = false;
          continue;
        }
        const EventId event = lts.global_event(lts.events[k]);
        moves[event].push_back(lts.targets[k]);
        offered.push_back(event);
      }
      if (stable) acceptances.push_back(EventSet(std::move(offered)));
    }
    node.divergent = divergent;
    node.min_acceptances = minimise(std::move(acceptances));

    std::vector<EventId> initials;
    std::vector<std::pair<EventId, NormId>> succ;
    for (auto& [event, targets] : moves) {
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
      initials.push_back(event);
      succ.emplace_back(event, node_of(tau_closure(lts, std::move(targets))));
    }
    // node reference may have been invalidated by nodes.emplace_back above;
    // re-index defensively.
    NormNode& fresh = norm.nodes[next - 1];
    fresh.initials = EventSet(std::move(initials));
    fresh.succ = std::move(succ);
    fresh.divergent = divergent;
  }
  return norm;
}

NormLts normalize(const Lts& lts, bool with_divergence, CancelToken* cancel) {
  // compact_from_lts preserves state numbering and transition order, so
  // this produces the same normal form as running directly on `lts`.
  return normalize(compact_from_lts(lts), with_divergence, cancel);
}

}  // namespace ecucsp
