#include "conform/mutate.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace ecucsp::conform {

namespace {

struct Point {
  enum class Kind { DropGuard, RetargetOutput };
  Kind kind = Kind::DropGuard;
  capl::CaplStmt* site = nullptr;
  std::string handler;
  std::string other_var;  // RetargetOutput: the replacement message
};

std::string handler_label(const capl::EventHandler& h) {
  using Kind = capl::EventHandler::Kind;
  switch (h.kind) {
    case Kind::Start:
      return "on start";
    case Kind::StopMeasurement:
      return "on stopMeasurement";
    case Kind::Message:
      return "on message " +
             (h.target.empty() ? std::to_string(h.msg_id) : h.target);
    case Kind::Timer:
      return "on timer " + h.target;
    case Kind::Key:
      return "on key " + h.target;
  }
  return "handler";
}

void collect_points(capl::CaplStmt& s, const std::string& handler,
                    const std::vector<std::string>& message_vars,
                    std::vector<Point>& out) {
  if (s.kind == capl::CStmtKind::If && s.then_branch) {
    out.push_back({Point::Kind::DropGuard, &s, handler, {}});
  }
  if (s.kind == capl::CStmtKind::ExprStmt && s.expr &&
      s.expr->kind == capl::CExprKind::Call && s.expr->text == "output" &&
      !s.expr->args.empty() &&
      s.expr->args[0]->kind == capl::CExprKind::Name) {
    // Retargeting needs a second declared message to aim at; pick the
    // first one (declaration order) that differs from the current target.
    for (const std::string& var : message_vars) {
      if (var != s.expr->args[0]->text) {
        out.push_back({Point::Kind::RetargetOutput, &s, handler, var});
        break;
      }
    }
  }
  for (auto& child : s.body) collect_points(*child, handler, message_vars, out);
  if (s.then_branch) collect_points(*s.then_branch, handler, message_vars, out);
  if (s.else_branch) collect_points(*s.else_branch, handler, message_vars, out);
  if (s.loop_body) collect_points(*s.loop_body, handler, message_vars, out);
}

std::vector<Point> all_points(capl::CaplProgram& prog) {
  std::vector<std::string> message_vars;
  for (const auto& v : prog.variables) {
    if (v.type == capl::CaplType::Message) message_vars.push_back(v.name);
  }
  std::vector<Point> out;
  for (auto& h : prog.handlers) {
    if (h.body) collect_points(*h.body, handler_label(h), message_vars, out);
  }
  return out;
}

}  // namespace

std::size_t count_mutation_points(const capl::CaplProgram& prog) {
  // collect_points never mutates; the const_cast only feeds the shared
  // pointer-collecting walk.
  return all_points(const_cast<capl::CaplProgram&>(prog)).size();
}

MutationInfo mutate_program(capl::CaplProgram& prog, std::uint64_t seed) {
  std::vector<Point> points = all_points(prog);
  if (points.empty()) {
    throw std::runtime_error("program has no mutation points");
  }
  const Point& p = points[seed % points.size()];
  MutationInfo info;
  info.handler = p.handler;
  info.line = p.site->line;
  info.column = p.site->column;
  if (p.kind == Point::Kind::DropGuard) {
    // Detach the then-branch first: assigning through it while it is still
    // a member of *site would move from freed storage.
    capl::CaplStmtPtr then = std::move(p.site->then_branch);
    *p.site = std::move(*then);
    info.description = "DropGuard: 'if' replaced by its then-branch";
  } else {
    capl::CaplExpr& arg = *p.site->expr->args[0];
    info.description = "RetargetOutput: output(" + arg.text +
                       ") now transmits " + p.other_var;
    arg.text = p.other_var;
  }
  info.description += " in '" + info.handler + "' at line " +
                      std::to_string(info.line);
  return info;
}

}  // namespace ecucsp::conform
