#include "conform/requirements.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>

#include "can/dbc.hpp"
#include "capl/parser.hpp"
#include "core/context.hpp"
#include "cspm/eval.hpp"
#include "ota/ota.hpp"
#include "translate/extractor.hpp"

namespace ecucsp::conform {

namespace {

// The *security* oracles. The extracted model oracle cannot catch a dropped
// MAC check (the extractor turns 'if' into internal choice, so the
// unprotected ECU still lies inside the over-approximation); R03/R04 over
// forged-injection runs can, which is precisely the paper's argument for
// requirement-level specs.

TraceOracle oracle_r01() {
  TraceOracle o;
  o.name = "R01";
  o.alphabet = {"send.SwInventoryReq", "rec.SwReport", "send.UpdApplyReq",
                "rec.UpdReport"};
  o.ignored = {"send.UpdApplyReqBad"};
  o.automaton.add_edge(0, "send.SwInventoryReq", 1);
  for (const std::string& e : o.alphabet) o.automaton.add_edge(1, e, 1);
  o.automaton.sort_edges();
  return o;
}

TraceOracle oracle_r02() {
  TraceOracle o;
  o.name = "R02";
  o.alphabet = {"send.SwInventoryReq", "rec.SwReport"};
  o.automaton.add_edge(0, "send.SwInventoryReq", 1);
  o.automaton.add_edge(1, "send.SwInventoryReq", 1);
  o.automaton.add_edge(1, "rec.SwReport", 1);
  o.automaton.sort_edges();
  return o;
}

TraceOracle oracle_r03() {
  TraceOracle o;
  o.name = "R03";
  o.alphabet = {"send.UpdApplyReq", "rec.UpdReport"};
  o.automaton.add_edge(0, "send.UpdApplyReq", 1);
  o.automaton.add_edge(1, "send.UpdApplyReq", 1);
  o.automaton.add_edge(1, "rec.UpdReport", 1);
  o.automaton.sort_edges();
  return o;
}

TraceOracle oracle_r04() {
  // Counting oracle: every UpdReport consumes one outstanding genuine
  // UpdApplyReq (saturating at 8 pending — beyond that the oracle stops
  // distinguishing, a documented over-approximation).
  TraceOracle o;
  o.name = "R04";
  o.alphabet = {"send.UpdApplyReq", "rec.UpdReport"};
  o.ignored = {"send.UpdApplyReqBad"};
  constexpr std::uint32_t kMax = 8;
  for (std::uint32_t k = 0; k <= kMax; ++k) {
    o.automaton.add_edge(k, "send.UpdApplyReq", std::min(k + 1, kMax));
    if (k > 0) o.automaton.add_edge(k, "rec.UpdReport", k - 1);
  }
  o.automaton.sort_edges();
  return o;
}

TraceOracle oracle_r05() {
  TraceOracle o;
  o.name = "R05";
  o.alphabet = {"send.UpdApplyReq", "send.UpdApplyReqBad", "rec.UpdReport"};
  o.automaton.add_edge(0, "send.UpdApplyReqBad", 0);
  o.automaton.add_edge(0, "send.UpdApplyReq", 1);
  for (const std::string& e : o.alphabet) o.automaton.add_edge(1, e, 1);
  o.automaton.sort_edges();
  return o;
}

}  // namespace

TraceOracle requirement_oracle(std::string_view id) {
  std::string key(id);
  for (char& c : key) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (key == "R01") return oracle_r01();
  if (key == "R02") return oracle_r02();
  if (key == "R03") return oracle_r03();
  if (key == "R04") return oracle_r04();
  if (key == "R05") return oracle_r05();
  throw std::invalid_argument("unknown requirement oracle '" + std::string(id) +
                              "' (expected R01..R05)");
}

std::vector<TraceOracle> ota_requirement_oracles() {
  return {oracle_r01(), oracle_r02(), oracle_r03(), oracle_r04(),
          oracle_r05()};
}

TraceOracle ota_model_oracle(std::size_t max_states) {
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const capl::CaplProgram ecu =
      capl::parse_capl(std::string(ota::ecu_capl_source()));
  translate::ExtractorOptions opt;
  opt.node_name = "ECU";
  opt.tx_channel = "rec";  // the ECU transmits on the VMG's rx channel
  opt.rx_channel = "send";
  opt.db = &db;
  Context ctx;
  cspm::Evaluator ev{ctx};
  ev.load_source(translate::extract_model(ecu, opt).cspm);
  TraceOracle oracle =
      compile_oracle(ctx, "model-ecu", ev.process("ECU"),
                     ctx.events_of({"send", "rec"}), /*strict=*/true,
                     max_states);
  oracle.ignored = {"send.UpdApplyReqBad"};
  return oracle;
}

}  // namespace ecucsp::conform
