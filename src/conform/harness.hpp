// Concrete test execution: abstract events <-> CAN frames <-> the
// simulated ECU.
//
// The FrameCodec is the two-way bridge the tentpole needs: abstraction
// (bus frame -> event name, the same id-to-constructor convention as
// translate/conformance.hpp, plus a MAC split that distinguishes genuine
// from forged UpdApplyReq frames) and concretisation (stimulus event name
// -> an injectable frame template). The harness maps a planned abstract
// trace to timed frame injections, drives a CAPL node (or the full
// VMG+ECU dialogue) in a seeded deterministic sim::Environment, and
// returns the abstracted bus trace for the oracles.
//
// The SpanMap closes the reporting loop: every abstract event is linked
// back to the CAPL handler spans that produce or consume it, so a FAIL's
// divergence event lands on source lines, not just on an event name.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "can/frame.hpp"
#include "capl/ast.hpp"
#include "core/cancel.hpp"

namespace ecucsp::conform {

struct FrameCodec {
  /// CAN id -> MsgId constructor name (DBC message names, as the extractor
  /// and translate/conformance use them).
  std::map<can::CanId, std::string> ctor_of;
  /// Ids transmitted on tx_channel (the VMG-driven direction); every other
  /// id abstracts to rx_channel.
  std::vector<can::CanId> tx_ids;
  std::string tx_channel = "send";
  std::string rx_channel = "rec";
  /// MAC split: frames of `mac_id` whose tag byte(7) != key ^ byte(0)
  /// abstract to ctor + "Bad" (the attacker cannot forge a valid tag —
  /// the symbolic-MAC abstraction of the paper's R05 discussion).
  std::optional<can::CanId> mac_id;
  std::uint8_t mac_key = 0;
  /// Stimulus frame templates, keyed by the full event name.
  std::map<std::string, can::CanFrame> stimulus_frames;

  std::string abstract_frame(const can::CanFrame& f) const;
  std::vector<std::string> abstract_trace(
      const std::vector<can::CanFrame>& frames) const;
  /// Injectable frame for a stimulus event; nullopt for everything the
  /// harness cannot produce (responses, unknown names).
  std::optional<can::CanFrame> concretize(const std::string& event) const;
};

/// The codec for the X.1373 OTA case study (src/ota reference sources).
/// `alphabet_mismatch` deliberately desynchronises one abstraction name
/// from the model alphabet (--inject-alphabet-mismatch): strict model
/// oracles must surface the drift as a pinned failure.
FrameCodec ota_codec(const can::DbcDatabase& db, bool alphabet_mismatch = false);

// --- event <-> CAPL source spans --------------------------------------------

struct CaplSpan {
  std::string node;     // CAPL node name ("ECU", "VMG")
  std::string handler;  // "on message UpdApplyReq", "on start", ...
  int line = 0;
  int column = 0;

  std::string to_string() const;
};

struct SpanMap {
  /// event name -> handler spans that output() the message (producers) or
  /// are dispatched by it (consumers).
  std::map<std::string, std::vector<CaplSpan>> spans;

  std::vector<CaplSpan> lookup(const std::string& event) const;
};

/// Scan `prog` and add its spans: an 'on message X' handler consumes
/// rx_channel.X (and its Bad twin when X rides the codec's mac_id); a
/// handler whose body output()s a declared message variable produces
/// tx_channel.<ctor>. tx/rx are per-node (the ECU transmits on the global
/// "rec" channel).
void add_program_spans(SpanMap& map, const capl::CaplProgram& prog,
                       const std::string& node_name, const FrameCodec& codec,
                       const std::string& tx_channel,
                       const std::string& rx_channel);

// --- executing one abstract test ---------------------------------------------

struct HarnessOptions {
  /// Seeds the environment (stimulus timing jitter via Environment::rng).
  std::uint64_t seed = 0;
  /// Quiescence gap between injected stimuli; must exceed the bus window
  /// by enough for every response cascade to drain.
  std::uint64_t settle_us = 5'000;
  std::uint64_t deadline_us = 2'000'000;
  /// Extra fixed-time injections (attack frames mid-dialogue).
  std::vector<std::pair<std::uint64_t, std::string>> injections_at;
};

struct RunResult {
  std::vector<std::string> observed;  // abstracted bus trace
};

/// Drive `ecu` (and optionally `vmg` for the autonomous dialogue scenario)
/// with the stimuli of `planned` (events the codec can concretize; response
/// events are expectations, not actions). Runs the simulation stepwise and
/// polls `cancel` between events, so per-test timeouts land mid-run.
RunResult run_conformance_test(const capl::CaplProgram& ecu,
                               const capl::CaplProgram* vmg,
                               const can::DbcDatabase& db,
                               const FrameCodec& codec,
                               const std::vector<std::string>& planned,
                               const HarnessOptions& opt,
                               CancelToken* cancel = nullptr);

}  // namespace ecucsp::conform
