// The OTA conformance suite: the tentpole's top layer.
//
// run_ota_conformance wires everything together for the X.1373 case study:
//   1. parse the reference CAPL + CANdb sources (src/ota);
//   2. extract the ECU implementation model (faithful source — the spec
//      side must not inherit an injected fault) and compile it to a
//      portable SymAutomaton, which doubles as the strict model oracle and
//      the test-generation model;
//   3. build the R01-R05 requirement oracles by hand and the composed
//      VMG+ECU system oracle from extract_system;
//   4. generate the selected suites (random walks, coverage tours,
//      counterexample replays scavenged from live spec checks and the
//      PR 2 verification store, plus the fixed dialogue scenarios);
//   5. execute every test as a custom CheckTask on the PR 1 scheduler
//      (parallel, per-test timeout, cooperative cancellation) against the
//      possibly-mutated ECU;
//   6. judge each observed trace with every applicable oracle, map
//      failures back to CAPL handler spans, and account transition
//      coverage of the implementation automaton.
//
// Reports are deterministic for a fixed --seed at any --jobs: generation
// happens before scheduling, every test is a pure function of plain shared
// data plus its own seed, and outcomes come back in submission order.
// Only the wall-clock fields vary; render_json(.., with_timing=false)
// omits them for byte-exact comparison.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "refine/compact.hpp"

namespace ecucsp::conform {

struct ConformOptions {
  std::string suite = "all";  // random | cover | counterexamples | all
  std::uint64_t seed = 1;
  std::size_t tests = 16;    // random-suite size
  std::size_t max_len = 12;  // random walk length cap
  unsigned jobs = 0;         // 0 = hardware concurrency
  /// In-check exploration threads per oracle check, forwarded to the
  /// scheduler's nested-parallelism budget (jobs × threads ≤ hardware).
  unsigned threads = 1;
  /// State-space reduction applied inside every oracle check
  /// (refine/compact.hpp); verdict-preserving, so reports are identical at
  /// every level.
  Compression compress = Compression::None;
  std::chrono::milliseconds timeout{10'000};  // per test
  std::size_t max_states = 1u << 20;
  /// Seeded ECU fault injection (mutate.hpp); the spec side stays faithful.
  std::optional<std::uint64_t> mutate_seed;
  /// Desynchronise the frame abstraction from the model alphabet — the
  /// strict model oracle must pin this as a failure.
  bool inject_alphabet_mismatch = false;
  /// PR 2 verification-store directory to scavenge counterexamples from.
  std::optional<std::filesystem::path> cache_dir;
};

struct ConformTestReport {
  std::string name;
  std::string strategy;
  std::string status;  // PASS | FAIL | TIMEOUT | CANCELLED | STATELIMIT | ERROR
  std::vector<std::string> planned;
  std::vector<std::string> observed;
  // Failure details (status FAIL):
  std::string oracle;  // first rejecting oracle
  std::int64_t divergence_index = -1;
  std::string divergence_event;
  std::vector<std::string> offered;
  std::string reason;
  std::vector<std::string> capl_spans;  // source spans of the divergence
  std::string error;                    // ERROR diagnostic
  double wall_ms = 0.0;
};

struct ConformReport {
  std::string suite;
  std::uint64_t seed = 0;
  unsigned jobs = 0;
  unsigned threads = 1;  // effective in-check threads after the budget clamp
  Compression compress = Compression::None;  // reduction mode of the run
  // Implementation-model automaton:
  std::size_t model_states = 0;
  std::size_t model_transitions = 0;
  std::size_t plannable_transitions = 0;  // coverage denominator
  // Distinct plannable transitions covered:
  std::size_t planned_covered = 0;
  std::size_t observed_covered = 0;
  // Outcome tally:
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t errors = 0;
  /// Stored traces that could not be bridged to the concrete alphabet.
  std::size_t skipped_counterexamples = 0;
  std::string mutation;       // description when mutate_seed is set
  std::string mutation_span;  // "ECU:line:col (handler)"
  double wall_ms = 0.0;
  std::vector<ConformTestReport> tests;

  bool ok() const {
    return !tests.empty() && failed == 0 && errors == 0 && timed_out == 0;
  }
  double planned_coverage_pct() const;
  double observed_coverage_pct() const;
};

ConformReport run_ota_conformance(const ConformOptions& opt);

std::string render_text(const ConformReport& r);
/// Machine-readable report ("conform_format": 1). with_timing=false omits
/// every wall-clock field so reports compare byte-for-byte across runs.
std::string render_json(const ConformReport& r, bool with_timing = true);

}  // namespace ecucsp::conform
