#include "conform/automaton.hpp"

#include <algorithm>

#include "refine/lts.hpp"
#include "refine/normalize.hpp"

namespace ecucsp::conform {

std::size_t SymAutomaton::edge_count() const {
  std::size_t n = 0;
  for (const auto& es : succ) n += es.size();
  return n;
}

const SymEdge* SymAutomaton::edge(std::uint32_t node,
                                  std::string_view event) const {
  if (node >= succ.size()) return nullptr;
  const auto& es = succ[node];
  auto it = std::lower_bound(
      es.begin(), es.end(), event,
      [](const SymEdge& e, std::string_view ev) { return e.event < ev; });
  if (it == es.end() || it->event != event) return nullptr;
  return &*it;
}

std::vector<std::string> SymAutomaton::offered(std::uint32_t node) const {
  std::vector<std::string> out;
  if (node >= succ.size()) return out;
  out.reserve(succ[node].size());
  for (const SymEdge& e : succ[node]) out.push_back(e.event);
  return out;
}

std::set<std::string> SymAutomaton::event_alphabet() const {
  std::set<std::string> out;
  for (const auto& es : succ) {
    for (const SymEdge& e : es) out.insert(e.event);
  }
  return out;
}

void SymAutomaton::add_edge(std::uint32_t from, std::string event,
                            std::uint32_t to) {
  const std::uint32_t hi = std::max(from, to);
  if (hi >= succ.size()) succ.resize(hi + 1);
  succ[from].push_back(SymEdge{std::move(event), to});
}

void SymAutomaton::sort_edges() {
  for (auto& es : succ) {
    std::sort(es.begin(), es.end(), [](const SymEdge& a, const SymEdge& b) {
      return a.event < b.event;
    });
  }
}

SymAutomaton compile_sym_automaton(Context& ctx, ProcessRef p,
                                   const EventSet& keep,
                                   std::size_t max_states,
                                   CancelToken* cancel) {
  const EventSet hidden = ctx.alphabet().set_difference(keep);
  const ProcessRef visible = hidden.empty() ? p : ctx.hide(p, hidden);
  const Lts lts = compile_lts(ctx, visible, max_states, cancel);
  const NormLts norm = normalize(lts, /*with_divergence=*/false, cancel);

  SymAutomaton out;
  out.root = norm.root;
  out.succ.resize(norm.nodes.size());
  for (std::size_t n = 0; n < norm.nodes.size(); ++n) {
    for (const auto& [event, target] : norm.nodes[n].succ) {
      if (event == TICK) continue;
      out.succ[n].push_back(SymEdge{ctx.event_name(event), target});
    }
  }
  out.sort_edges();
  return out;
}

}  // namespace ecucsp::conform
