// Portable symbolic automata — the data structure conformance testing is
// built on.
//
// Everything in src/core is Context-bound and Contexts are not thread-safe
// (core/context.hpp), yet a conformance run wants to compile the spec and
// the implementation model *once* and then judge observed traces from many
// worker threads. A SymAutomaton squares that: it is the normalized
// (deterministic) LTS of a process with every event rendered to its
// portable name string ("send.UpdApplyReq"), so it carries no EventId,
// ProcessRef or Context reference and is safe to share read-only across
// any number of test-executor threads.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/cancel.hpp"
#include "core/context.hpp"

namespace ecucsp::conform {

struct SymEdge {
  std::string event;
  std::uint32_t target = 0;
};

/// A deterministic automaton over event-name strings. succ[n] is sorted by
/// event name, so lookup is a binary search. Hand-built requirement oracles
/// use add_edge()/sort_edges(); compiled ones come from
/// compile_sym_automaton().
struct SymAutomaton {
  static constexpr std::uint32_t NONE = 0xffffffffu;

  std::uint32_t root = 0;
  std::vector<std::vector<SymEdge>> succ;

  std::size_t state_count() const { return succ.size(); }
  std::size_t edge_count() const;

  /// The unique outgoing edge of `node` labelled `event`, or nullptr.
  const SymEdge* edge(std::uint32_t node, std::string_view event) const;

  /// Event names offered at `node`, in sorted order.
  std::vector<std::string> offered(std::uint32_t node) const;

  /// Every event name appearing on some edge.
  std::set<std::string> event_alphabet() const;

  /// Builder helpers: grow nodes on demand, then sort once at the end.
  void add_edge(std::uint32_t from, std::string event, std::uint32_t to);
  void sort_edges();
};

/// Compile `p` restricted to the visible events in `keep` (everything else
/// is hidden first) into a symbolic automaton: hide -> compile_lts ->
/// normalize -> render event names. TAU never appears in a normalized
/// automaton and TICK is dropped — observed bus traces carry neither.
/// Cancellation and the state budget reach both exploration passes.
SymAutomaton compile_sym_automaton(Context& ctx, ProcessRef p,
                                   const EventSet& keep,
                                   std::size_t max_states = 1u << 20,
                                   CancelToken* cancel = nullptr);

}  // namespace ecucsp::conform
