// Seeded CAPL fault injection for exercising the conformance oracles.
//
// A conformance suite that only ever passes proves nothing; these mutants
// give it something to catch. Both operators produce *commission* faults —
// extra or wrong bus traffic — because those are exactly what a safety
// trace oracle can detect (see oracle.hpp on the omission-fault
// limitation):
//   * DropGuard      — replace an 'if' with its then-branch. Applied to
//                      the ECU's MAC check it yields the paper's
//                      unprotected ECU: forged UpdApplyReq frames now
//                      trigger an UpdReport (R05/R03 violation).
//   * RetargetOutput — make an output() transmit a different declared
//                      message variable: the node answers with the wrong
//                      frame (model-oracle violation).
//
// Mutation points are collected in deterministic AST order, so a seed
// names the same mutant on every run and in the report.
#pragma once

#include <cstdint>
#include <string>

#include "capl/ast.hpp"

namespace ecucsp::conform {

struct MutationInfo {
  std::string description;  // operator + what changed
  std::string handler;      // enclosing handler label
  int line = 0;
  int column = 0;
};

/// Number of applicable mutation points in `prog`.
std::size_t count_mutation_points(const capl::CaplProgram& prog);

/// Apply mutation point (seed % count) in place. Throws std::runtime_error
/// when the program has no mutation points.
MutationInfo mutate_program(capl::CaplProgram& prog, std::uint64_t seed);

}  // namespace ecucsp::conform
