// The Table III requirement oracles as a library surface.
//
// PR 4 built these R01–R05 trace oracles inside the conformance suite;
// offline replay (src/replay) judges logged fleet traffic with exactly the
// same automata, so they live here where both layers — and anything else
// that wants to monitor OTA traffic — can compile them without dragging in
// the whole suite. The oracles are hand-built, portable (string-based, no
// Context) and safe to share read-only across threads.
//
// ota_model_oracle() is the heavier companion: the strict oracle compiled
// from the CSP model extracted from the reference CAPL ECU. It constrains
// *everything* the ECU may do (not just the security requirements), which
// also means it rejects any event name outside the extracted alphabet —
// use it on traffic whose frame population the codec fully covers.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "conform/oracle.hpp"

namespace ecucsp::conform {

/// One Table III requirement oracle by id ("R01".."R05", case-insensitive).
/// Throws std::invalid_argument for anything else.
TraceOracle requirement_oracle(std::string_view id);

/// All five requirement oracles, in R01..R05 order.
std::vector<TraceOracle> ota_requirement_oracles();

/// The strict model oracle: parse the reference CAPL ECU (src/ota), extract
/// its CSP model, compile to a SymAutomaton over the send/rec alphabet.
/// Forged apply requests are in `ignored` — the model deliberately has no
/// word for attacker-injected frames.
TraceOracle ota_model_oracle(std::size_t max_states = 1u << 20);

}  // namespace ecucsp::conform
