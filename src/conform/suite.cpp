#include "conform/suite.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "can/dbc.hpp"
#include "capl/parser.hpp"
#include "conform/generate.hpp"
#include "conform/harness.hpp"
#include "conform/mutate.hpp"
#include "conform/oracle.hpp"
#include "conform/requirements.hpp"
#include "core/context.hpp"
#include "cspm/eval.hpp"
#include "ota/ota.hpp"
#include "store/cache.hpp"
#include "translate/extractor.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::conform {

namespace {

using EdgeKey = std::pair<std::uint32_t, std::uint32_t>;

std::vector<std::string> collect_trace(const Context& ctx,
                                       const Counterexample& cex) {
  std::vector<std::string> out;
  out.reserve(cex.trace.size() + 1);
  for (EventId e : cex.trace) out.push_back(ctx.event_name(e));
  if (cex.kind == Counterexample::Kind::TraceViolation ||
      cex.kind == Counterexample::Kind::Nondeterminism) {
    out.push_back(ctx.event_name(cex.event));
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string_list(const std::vector<std::string>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(xs[i]) + "\"";
  }
  return out + "]";
}

std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

double ConformReport::planned_coverage_pct() const {
  if (plannable_transitions == 0) return 100.0;
  return 100.0 * static_cast<double>(planned_covered) /
         static_cast<double>(plannable_transitions);
}

double ConformReport::observed_coverage_pct() const {
  if (plannable_transitions == 0) return 100.0;
  return 100.0 * static_cast<double>(observed_covered) /
         static_cast<double>(plannable_transitions);
}

ConformReport run_ota_conformance(const ConformOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  ConformReport rep;
  rep.suite = opt.suite;
  rep.seed = opt.seed;

  // 1. Shared plain-data inputs. Everything below is read-only during test
  // execution, so worker threads may share it without locks (the Contexts
  // used for extraction/oracle compilation never cross into the tasks —
  // oracles and automata are portable string-based data).
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const FrameCodec codec = ota_codec(db, opt.inject_alphabet_mismatch);
  const capl::CaplProgram ecu_spec =
      capl::parse_capl(std::string(ota::ecu_capl_source()));
  const capl::CaplProgram vmg_prog =
      capl::parse_capl(std::string(ota::vmg_capl_source()));

  // The executed ECU: faithful, or a seeded mutant. Extraction and spans
  // stay on the faithful source — the oracle is the spec, and failure spans
  // must point into code the reader can open.
  capl::CaplProgram ecu_impl =
      capl::parse_capl(std::string(ota::ecu_capl_source()));
  if (opt.mutate_seed) {
    const MutationInfo m = mutate_program(ecu_impl, *opt.mutate_seed);
    rep.mutation = m.description;
    rep.mutation_span = "ECU:" + std::to_string(m.line) + ":" +
                        std::to_string(m.column) + " (" + m.handler + ")";
  }

  SpanMap spans;
  add_program_spans(spans, ecu_spec, "ECU", codec, /*tx=*/"rec",
                    /*rx=*/"send");
  add_program_spans(spans, vmg_prog, "VMG", codec, /*tx=*/"send",
                    /*rx=*/"rec");

  // 2. Implementation model -> automaton (doubles as strict model oracle
  // and generation model). Shared with offline replay via requirements.hpp.
  const TraceOracle model_ecu = ota_model_oracle(opt.max_states);
  const SymAutomaton& impl_auto = model_ecu.automaton;

  // 3. Composed-system oracle (the dialogue scenario's spec).
  translate::ExtractorOptions ecu_opt;
  ecu_opt.node_name = "ECU";
  ecu_opt.tx_channel = "rec";  // the ECU transmits on the VMG's rx channel
  ecu_opt.rx_channel = "send";
  ecu_opt.db = &db;
  translate::ExtractorOptions vmg_opt;
  vmg_opt.node_name = "VMG";
  vmg_opt.db = &db;
  Context sys_ctx;
  cspm::Evaluator sys_ev{sys_ctx};
  sys_ev.load_source(
      translate::extract_system({{&vmg_prog, vmg_opt}, {&ecu_spec, ecu_opt}})
          .cspm);
  TraceOracle model_system =
      compile_oracle(sys_ctx, "model-system", sys_ev.process("SYSTEM"),
                     sys_ctx.events_of({"send", "rec"}), /*strict=*/true,
                     opt.max_states);
  model_system.ignored = {"send.UpdApplyReqBad"};

  const TraceOracle r01 = requirement_oracle("R01");
  const TraceOracle r02 = requirement_oracle("R02");
  const TraceOracle r03 = requirement_oracle("R03");
  const TraceOracle r04 = requirement_oracle("R04");
  const TraceOracle r05 = requirement_oracle("R05");
  struct OracleRef {
    const TraceOracle* oracle;
    bool dialogue_only;  // specs of VMG behaviour don't bind harness-driven runs
  };
  const std::vector<OracleRef> oracles = {
      {&model_ecu, false}, {&model_system, true}, {&r01, true},
      {&r02, false},       {&r03, false},         {&r04, false},
      {&r05, false},
  };

  // 4. Generation.
  GeneratorOptions gen;
  gen.seed = opt.seed;
  gen.tests = opt.tests;
  gen.max_len = opt.max_len;
  gen.plannable = [&codec](const std::string& e) {
    return codec.concretize(e).has_value() || e.starts_with("rec.");
  };
  rep.model_states = impl_auto.state_count();
  rep.model_transitions = impl_auto.edge_count();
  const auto plannable = plannable_edges(impl_auto, gen);
  rep.plannable_transitions = plannable.size();

  const bool want_cover = opt.suite == "cover" || opt.suite == "all";
  const bool want_random = opt.suite == "random" || opt.suite == "all";
  const bool want_cex =
      opt.suite == "counterexamples" || opt.suite == "all";

  std::vector<TestCase> tests;
  if (want_cover) {
    for (TestCase& tc : generate_cover(impl_auto, gen)) {
      tests.push_back(std::move(tc));
    }
  }
  if (want_random) {
    for (TestCase& tc : generate_random(impl_auto, gen)) {
      tests.push_back(std::move(tc));
    }
  }
  if (want_cex) {
    // Attack traces: the live R05 check on the unprotected variant (the
    // paper's headline counterexample) plus whatever the verification
    // store has accumulated from earlier runs.
    std::vector<std::vector<std::string>> traces;
    auto ota_model = ota::build_ota_model();
    const CheckResult r05_unprot = ota::check_requirement_on(
        *ota_model, "R05", ota_model->system_unprotected, opt.max_states);
    if (!r05_unprot.passed && r05_unprot.counterexample) {
      traces.push_back(
          collect_trace(ota_model->ctx, *r05_unprot.counterexample));
    }
    if (opt.cache_dir) {
      for (auto& tr :
           store::scan_stored_counterexamples(*opt.cache_dir, ota_model->ctx)) {
        traces.push_back(std::move(tr));
      }
    }
    // Abstract spec alphabet -> concrete test alphabet. 'install' is the
    // ECU's internal apply event — invisible on the bus, dropped; the
    // oracles judge its observable shadow (an UpdReport, or silence).
    const std::map<std::string, std::string> bridge = {
        {"send.reqSw.genuine", "send.SwInventoryReq"},
        {"send.reqApp.genuine", "send.UpdApplyReq"},
        {"send.reqApp.forged", "send.UpdApplyReqBad"},
        {"rec.rptSw.genuine", "rec.SwReport"},
        {"rec.rptUpd.genuine", "rec.UpdReport"},
    };
    const std::set<std::string> drop = {"install"};
    std::set<std::vector<std::string>> seen;
    std::uint64_t cex_rng = opt.seed ^ 0xa77ac4ULL;
    for (const auto& tr : traces) {
      auto tc = bridge_counterexample(
          tr, bridge, drop,
          "counterexample-" + std::to_string(seen.size()));
      if (!tc) {
        ++rep.skipped_counterexamples;
        continue;
      }
      if (!seen.insert(tc->events).second) continue;  // dedup replays
      tc->seed = splitmix64(cex_rng);
      tests.push_back(std::move(*tc));
    }
  }
  if (want_cover || want_cex) {
    // Fixed dialogue scenarios: the autonomous VMG+ECU exchange, plain and
    // with a forged apply request injected mid-dialogue.
    std::uint64_t dlg_rng = opt.seed ^ 0xd1a109ULL;
    TestCase plain;
    plain.name = "dialogue-plain";
    plain.strategy = "dialogue";
    plain.dialogue = true;
    plain.seed = splitmix64(dlg_rng);
    tests.push_back(std::move(plain));
    TestCase forged;
    forged.name = "dialogue-forged-inject";
    forged.strategy = "dialogue";
    forged.dialogue = true;
    forged.seed = splitmix64(dlg_rng);
    forged.injections_at = {{250, "send.UpdApplyReqBad"}};
    tests.push_back(std::move(forged));
  }

  // 5. Execute through the batch scheduler: one custom CheckTask per test,
  // each writing rich results into its own pre-allocated slot (the
  // scheduler's outcomes arrive in submission order; slot writes are
  // published by the scheduler's own join).
  std::vector<ConformTestReport> results(tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    results[i].name = tests[i].name;
    results[i].strategy = tests[i].strategy;
    results[i].planned = tests[i].events;
    results[i].status = "CANCELLED";  // overwritten unless never run
  }

  std::vector<verify::CheckTask> ctasks(tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    ctasks[i].name = tests[i].name;
    ctasks[i].timeout = opt.timeout;
    ctasks[i].custom = [&, i](CancelToken& token) -> verify::RenderedCheck {
      const TestCase& tc = tests[i];
      ConformTestReport& r = results[i];
      HarnessOptions h;
      h.seed = tc.seed;
      h.injections_at = tc.injections_at;
      const RunResult run = run_conformance_test(
          ecu_impl, tc.dialogue ? &vmg_prog : nullptr, db, codec, tc.events,
          h, &token);
      r.observed = run.observed;
      bool ok = true;
      for (const OracleRef& oref : oracles) {
        if (oref.dialogue_only && !tc.dialogue) continue;
        const OracleVerdict v = oref.oracle->judge(run.observed);
        if (v.accepted) continue;
        ok = false;
        r.oracle = oref.oracle->name;
        r.divergence_index = static_cast<std::int64_t>(v.divergence_index);
        r.divergence_event = v.event;
        r.offered = v.offered;
        r.reason = v.reason;
        for (const CaplSpan& s : spans.lookup(v.event)) {
          r.capl_spans.push_back(s.to_string());
        }
        break;
      }
      verify::RenderedCheck out;
      out.result.passed = ok;
      if (!ok) {
        out.counterexample = r.oracle + " rejects event #" +
                             std::to_string(r.divergence_index) + " (" +
                             r.divergence_event + "): " + r.reason;
      }
      return out;
    };
  }

  verify::SchedulerOptions sched_opt;
  sched_opt.jobs = opt.jobs;
  sched_opt.threads = opt.threads;
  sched_opt.compression = opt.compress;
  sched_opt.default_timeout = opt.timeout;
  verify::VerifyScheduler sched(sched_opt);
  rep.jobs = sched.jobs();
  rep.threads = sched.threads();
  rep.compress = sched.compression();
  const verify::BatchResult batch = sched.run(ctasks);

  for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
    const verify::TaskOutcome& o = batch.outcomes[i];
    ConformTestReport& r = results[i];
    switch (o.status) {
      case verify::TaskStatus::Passed:
        r.status = "PASS";
        ++rep.passed;
        break;
      case verify::TaskStatus::Failed:
        r.status = "FAIL";
        ++rep.failed;
        break;
      case verify::TaskStatus::TimedOut:
        r.status = "TIMEOUT";
        ++rep.timed_out;
        break;
      case verify::TaskStatus::Cancelled:
        r.status = "CANCELLED";
        ++rep.errors;
        break;
      case verify::TaskStatus::StateLimit:
        r.status = "STATELIMIT";
        ++rep.errors;
        break;
      case verify::TaskStatus::Error:
        r.status = "ERROR";
        ++rep.errors;
        break;
    }
    r.error = o.error;
    r.wall_ms = std::chrono::duration<double, std::milli>(o.wall).count();
  }

  // 6. Transition-coverage accounting over the plannable edge set.
  const std::set<EdgeKey> plannable_set(plannable.begin(), plannable.end());
  std::set<EdgeKey> planned_cov;
  std::set<EdgeKey> observed_cov;
  for (const ConformTestReport& r : results) {
    for (const EdgeKey& e : covered_edges(impl_auto, r.planned)) {
      if (plannable_set.contains(e)) planned_cov.insert(e);
    }
    for (const EdgeKey& e : covered_edges(impl_auto, r.observed)) {
      if (plannable_set.contains(e)) observed_cov.insert(e);
    }
  }
  rep.planned_covered = planned_cov.size();
  rep.observed_covered = observed_cov.size();

  rep.tests = std::move(results);
  rep.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return rep;
}

std::string render_text(const ConformReport& r) {
  std::ostringstream out;
  out << "conformance suite '" << r.suite << "' seed " << r.seed << " ("
      << r.jobs << " jobs, " << r.threads << " threads/check, compress "
      << to_string(r.compress) << ")\n";
  out << "model: " << r.model_states << " states, " << r.model_transitions
      << " transitions (" << r.plannable_transitions << " plannable)\n";
  out << "coverage: planned " << r.planned_covered << "/"
      << r.plannable_transitions << " (" << fmt_pct(r.planned_coverage_pct())
      << "%), observed " << r.observed_covered << "/"
      << r.plannable_transitions << " (" << fmt_pct(r.observed_coverage_pct())
      << "%)\n";
  if (!r.mutation.empty()) {
    out << "mutation: " << r.mutation << " [" << r.mutation_span << "]\n";
  }
  for (const ConformTestReport& t : r.tests) {
    out << "  [" << t.status << "] " << t.name << " (" << t.strategy << ", "
        << t.observed.size() << " events)";
    if (t.status == "FAIL") {
      out << " -- " << t.oracle << " rejects #" << t.divergence_index << " "
          << t.divergence_event << ": " << t.reason;
      for (const std::string& s : t.capl_spans) out << "\n      at " << s;
    } else if (!t.error.empty()) {
      out << " -- " << t.error;
    }
    out << "\n";
  }
  out << (r.ok() ? "CONFORMS" : "DEVIATES") << ": " << r.passed << " passed, "
      << r.failed << " failed, " << r.timed_out << " timed out, " << r.errors
      << " errors\n";
  return out.str();
}

std::string render_json(const ConformReport& r, bool with_timing) {
  std::ostringstream out;
  out << "{\"conform_format\":1";
  out << ",\"suite\":\"" << json_escape(r.suite) << "\"";
  out << ",\"seed\":" << r.seed;
  out << ",\"jobs\":" << r.jobs;
  out << ",\"threads\":" << r.threads;
  out << ",\"compress\":\"" << to_string(r.compress) << "\"";
  out << ",\"ok\":" << (r.ok() ? "true" : "false");
  out << ",\"model\":{\"states\":" << r.model_states
      << ",\"transitions\":" << r.model_transitions
      << ",\"plannable_transitions\":" << r.plannable_transitions << "}";
  out << ",\"coverage\":{\"planned_covered\":" << r.planned_covered
      << ",\"planned_pct\":" << fmt_pct(r.planned_coverage_pct())
      << ",\"observed_covered\":" << r.observed_covered
      << ",\"observed_pct\":" << fmt_pct(r.observed_coverage_pct()) << "}";
  if (r.mutation.empty()) {
    out << ",\"mutation\":null";
  } else {
    out << ",\"mutation\":{\"description\":\"" << json_escape(r.mutation)
        << "\",\"span\":\"" << json_escape(r.mutation_span) << "\"}";
  }
  out << ",\"summary\":{\"tests\":" << r.tests.size()
      << ",\"passed\":" << r.passed << ",\"failed\":" << r.failed
      << ",\"timed_out\":" << r.timed_out << ",\"errors\":" << r.errors
      << ",\"skipped_counterexamples\":" << r.skipped_counterexamples << "}";
  out << ",\"tests\":[";
  for (std::size_t i = 0; i < r.tests.size(); ++i) {
    const ConformTestReport& t = r.tests[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << json_escape(t.name) << "\"";
    out << ",\"strategy\":\"" << json_escape(t.strategy) << "\"";
    out << ",\"status\":\"" << json_escape(t.status) << "\"";
    out << ",\"planned\":" << json_string_list(t.planned);
    out << ",\"observed\":" << json_string_list(t.observed);
    if (t.status == "FAIL") {
      out << ",\"oracle\":\"" << json_escape(t.oracle) << "\"";
      out << ",\"divergence_index\":" << t.divergence_index;
      out << ",\"event\":\"" << json_escape(t.divergence_event) << "\"";
      out << ",\"offered\":" << json_string_list(t.offered);
      out << ",\"reason\":\"" << json_escape(t.reason) << "\"";
      out << ",\"capl_spans\":" << json_string_list(t.capl_spans);
    }
    if (!t.error.empty()) {
      out << ",\"error\":\"" << json_escape(t.error) << "\"";
    }
    if (with_timing) out << ",\"wall_ms\":" << fmt_pct(t.wall_ms);
    out << "}";
  }
  out << "]";
  if (with_timing) out << ",\"wall_ms\":" << fmt_pct(r.wall_ms);
  out << "}";
  return out.str();
}

}  // namespace ecucsp::conform
