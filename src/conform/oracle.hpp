// Trace oracles: accept/reject an observed event sequence against a spec.
//
// The oracle is the "check every run against the spec" half of model-based
// conformance testing. It walks a SymAutomaton over the observed trace and
// reports the first divergence: the index, the offending event, and what
// the spec offered instead. Because it is pure data over event-name
// strings, one oracle compiled on the main thread serves every test
// executor concurrently.
//
// Scope (documented limitation): a trace oracle checks *safety* — it
// detects commission faults (the implementation did something the spec
// forbids) but not omission faults (the implementation silently did
// nothing where the spec would eventually act). Liveness needs timed or
// refusal testing, which is out of scope here.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "conform/automaton.hpp"

namespace ecucsp::conform {

struct OracleVerdict {
  bool accepted = true;
  /// When rejected: index into the judged trace of the offending event.
  std::size_t divergence_index = 0;
  std::string event;
  /// What the spec automaton offered at the divergence point.
  std::vector<std::string> offered;
  std::string reason;
};

/// Resumable oracle position: the automaton node plus the global index of
/// the next event to judge. A cursor saved at a chunk boundary and restored
/// on another thread reproduces one-shot judge() exactly — this is the
/// state the offline replay sweep (src/replay) carries across chunks, and
/// divergence indices stay global because the cursor remembers how many
/// events precede it.
struct OracleCursor {
  std::uint32_t node = 0;
  std::size_t next = 0;

  friend bool operator==(const OracleCursor&, const OracleCursor&) = default;
};

struct TraceOracle {
  std::string name;
  SymAutomaton automaton;
  /// Events this oracle constrains. An alphabet event must match an
  /// automaton edge; anything else is skipped (or rejected under strict).
  std::set<std::string> alphabet;
  /// Events skipped silently even under strict (e.g. attacker-injected
  /// frames the model deliberately has no word for).
  std::set<std::string> ignored;
  /// Reject events outside alphabet + ignored instead of skipping them.
  /// Model oracles are strict — an unknown event name there means the
  /// frame-to-event mapping and the model alphabet have drifted apart,
  /// which must surface as a failure, not a silent skip.
  bool strict = false;

  OracleVerdict judge(const std::vector<std::string>& events) const;

  /// Fresh cursor at the automaton root, before event 0.
  OracleCursor start() const { return OracleCursor{automaton.root, 0}; }

  /// Judge events[cur.next, min(end, events.size())) resuming from `cur`,
  /// advancing the cursor as events are consumed. On acceptance the cursor
  /// sits after the last judged event; on rejection it points *at* the
  /// offending event (node unchanged), so a caller can record the
  /// divergence, bump cur.next past the event, and resume — the
  /// skip-and-continue discipline replay uses to report several
  /// divergences per log. Splitting a trace at any set of indices and
  /// resuming yields byte-identical verdicts to one-shot judge()
  /// (tests/conform_oracle_test.cpp pins this at every split point).
  OracleVerdict judge_resume(
      OracleCursor& cur, const std::vector<std::string>& events,
      std::size_t end = static_cast<std::size_t>(-1)) const;
};

/// A stateful per-query session over a TraceOracle: one event at a time,
/// with offered-set extraction at the current position. This is the shape
/// an active learner needs — a membership query walks the oracle event by
/// event, and on rejection the learner reads `offered()` to decompose the
/// counterexample (which spec events were available where the trace died).
///
/// step() is sticky-rejecting: once an event is refused the session stays
/// dead until reset(), mirroring the prefix-closure of trace languages
/// (a rejected word has no accepted extensions). Stepping a trace one
/// event at a time is byte-identical to one-shot judge() on the whole
/// trace (pinned in tests/conform_oracle_test.cpp).
class OracleSession {
 public:
  explicit OracleSession(const TraceOracle& oracle)
      : oracle_(&oracle), cur_(oracle.start()) {}

  /// Consume one event. Returns true while the oracle still accepts the
  /// trace so far; false from the first refused event onward.
  bool step(const std::string& event);

  /// True until some stepped event was refused.
  bool alive() const { return alive_; }

  /// Events the spec offers at the current node, in automaton edge order.
  /// After a rejection this is the offered set at the divergence point
  /// (the node does not advance on refusal), exactly what judge() reports.
  std::vector<std::string> offered() const {
    return oracle_->automaton.offered(cur_.node);
  }

  /// Resumable position; next counts consumed events (accepted or not),
  /// so after a full walk it equals the trace length judged so far.
  const OracleCursor& cursor() const { return cur_; }

  /// The rejection details once !alive(); a default verdict before that.
  const OracleVerdict& verdict() const { return verdict_; }

  const TraceOracle& oracle() const { return *oracle_; }

  /// Back to the root, before event 0, alive again.
  void reset() {
    cur_ = oracle_->start();
    alive_ = true;
    verdict_ = {};
  }

 private:
  const TraceOracle* oracle_;
  OracleCursor cur_;
  bool alive_ = true;
  OracleVerdict verdict_;
};

/// Compile a Context-bound spec process into a portable oracle. The oracle
/// alphabet is the rendered `keep` set (not just the events reachable in
/// the automaton — an alphabet event the spec never allows must reject).
TraceOracle compile_oracle(Context& ctx, std::string name, ProcessRef spec,
                           const EventSet& keep, bool strict = false,
                           std::size_t max_states = 1u << 20,
                           CancelToken* cancel = nullptr);

}  // namespace ecucsp::conform
