// Trace oracles: accept/reject an observed event sequence against a spec.
//
// The oracle is the "check every run against the spec" half of model-based
// conformance testing. It walks a SymAutomaton over the observed trace and
// reports the first divergence: the index, the offending event, and what
// the spec offered instead. Because it is pure data over event-name
// strings, one oracle compiled on the main thread serves every test
// executor concurrently.
//
// Scope (documented limitation): a trace oracle checks *safety* — it
// detects commission faults (the implementation did something the spec
// forbids) but not omission faults (the implementation silently did
// nothing where the spec would eventually act). Liveness needs timed or
// refusal testing, which is out of scope here.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "conform/automaton.hpp"

namespace ecucsp::conform {

struct OracleVerdict {
  bool accepted = true;
  /// When rejected: index into the judged trace of the offending event.
  std::size_t divergence_index = 0;
  std::string event;
  /// What the spec automaton offered at the divergence point.
  std::vector<std::string> offered;
  std::string reason;
};

struct TraceOracle {
  std::string name;
  SymAutomaton automaton;
  /// Events this oracle constrains. An alphabet event must match an
  /// automaton edge; anything else is skipped (or rejected under strict).
  std::set<std::string> alphabet;
  /// Events skipped silently even under strict (e.g. attacker-injected
  /// frames the model deliberately has no word for).
  std::set<std::string> ignored;
  /// Reject events outside alphabet + ignored instead of skipping them.
  /// Model oracles are strict — an unknown event name there means the
  /// frame-to-event mapping and the model alphabet have drifted apart,
  /// which must surface as a failure, not a silent skip.
  bool strict = false;

  OracleVerdict judge(const std::vector<std::string>& events) const;
};

/// Compile a Context-bound spec process into a portable oracle. The oracle
/// alphabet is the rendered `keep` set (not just the events reachable in
/// the automaton — an alphabet event the spec never allows must reject).
TraceOracle compile_oracle(Context& ctx, std::string name, ProcessRef spec,
                           const EventSet& keep, bool strict = false,
                           std::size_t max_states = 1u << 20,
                           CancelToken* cancel = nullptr);

}  // namespace ecucsp::conform
