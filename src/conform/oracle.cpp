#include "conform/oracle.hpp"

namespace ecucsp::conform {

OracleVerdict TraceOracle::judge(const std::vector<std::string>& events) const {
  std::uint32_t node = automaton.root;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string& e = events[i];
    if (ignored.contains(e)) continue;
    if (!alphabet.contains(e)) {
      if (!strict) continue;
      OracleVerdict v;
      v.accepted = false;
      v.divergence_index = i;
      v.event = e;
      v.offered = automaton.offered(node);
      v.reason = "event outside the oracle alphabet";
      return v;
    }
    const SymEdge* edge = automaton.edge(node, e);
    if (edge == nullptr) {
      OracleVerdict v;
      v.accepted = false;
      v.divergence_index = i;
      v.event = e;
      v.offered = automaton.offered(node);
      v.reason = "spec offers no such event here";
      return v;
    }
    node = edge->target;
  }
  return {};
}

TraceOracle compile_oracle(Context& ctx, std::string name, ProcessRef spec,
                           const EventSet& keep, bool strict,
                           std::size_t max_states, CancelToken* cancel) {
  TraceOracle oracle;
  oracle.name = std::move(name);
  oracle.automaton = compile_sym_automaton(ctx, spec, keep, max_states, cancel);
  for (EventId e : keep) oracle.alphabet.insert(ctx.event_name(e));
  oracle.strict = strict;
  return oracle;
}

}  // namespace ecucsp::conform
