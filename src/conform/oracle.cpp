#include "conform/oracle.hpp"

#include <algorithm>

namespace ecucsp::conform {

OracleVerdict TraceOracle::judge(const std::vector<std::string>& events) const {
  OracleCursor cur = start();
  return judge_resume(cur, events);
}

OracleVerdict TraceOracle::judge_resume(OracleCursor& cur,
                                        const std::vector<std::string>& events,
                                        std::size_t end) const {
  const std::size_t stop = std::min(end, events.size());
  for (; cur.next < stop; ++cur.next) {
    const std::string& e = events[cur.next];
    if (ignored.contains(e)) continue;
    if (!alphabet.contains(e)) {
      if (!strict) continue;
      OracleVerdict v;
      v.accepted = false;
      v.divergence_index = cur.next;
      v.event = e;
      v.offered = automaton.offered(cur.node);
      v.reason = "event outside the oracle alphabet";
      return v;
    }
    const SymEdge* edge = automaton.edge(cur.node, e);
    if (edge == nullptr) {
      OracleVerdict v;
      v.accepted = false;
      v.divergence_index = cur.next;
      v.event = e;
      v.offered = automaton.offered(cur.node);
      v.reason = "spec offers no such event here";
      return v;
    }
    cur.node = edge->target;
  }
  return {};
}

TraceOracle compile_oracle(Context& ctx, std::string name, ProcessRef spec,
                           const EventSet& keep, bool strict,
                           std::size_t max_states, CancelToken* cancel) {
  TraceOracle oracle;
  oracle.name = std::move(name);
  oracle.automaton = compile_sym_automaton(ctx, spec, keep, max_states, cancel);
  for (EventId e : keep) oracle.alphabet.insert(ctx.event_name(e));
  oracle.strict = strict;
  return oracle;
}

}  // namespace ecucsp::conform
