#include "conform/oracle.hpp"

#include <algorithm>

namespace ecucsp::conform {

OracleVerdict TraceOracle::judge(const std::vector<std::string>& events) const {
  OracleCursor cur = start();
  return judge_resume(cur, events);
}

OracleVerdict TraceOracle::judge_resume(OracleCursor& cur,
                                        const std::vector<std::string>& events,
                                        std::size_t end) const {
  const std::size_t stop = std::min(end, events.size());
  for (; cur.next < stop; ++cur.next) {
    const std::string& e = events[cur.next];
    if (ignored.contains(e)) continue;
    if (!alphabet.contains(e)) {
      if (!strict) continue;
      OracleVerdict v;
      v.accepted = false;
      v.divergence_index = cur.next;
      v.event = e;
      v.offered = automaton.offered(cur.node);
      v.reason = "event outside the oracle alphabet";
      return v;
    }
    const SymEdge* edge = automaton.edge(cur.node, e);
    if (edge == nullptr) {
      OracleVerdict v;
      v.accepted = false;
      v.divergence_index = cur.next;
      v.event = e;
      v.offered = automaton.offered(cur.node);
      v.reason = "spec offers no such event here";
      return v;
    }
    cur.node = edge->target;
  }
  return {};
}

bool OracleSession::step(const std::string& event) {
  if (!alive_) {
    // Sticky rejection: count the event so cursor().next stays the number
    // of consumed events, but do not move the node or rewrite the verdict.
    ++cur_.next;
    return false;
  }
  // One iteration of judge_resume's loop, so a stepped walk reproduces the
  // one-shot verdict byte for byte.
  const std::size_t at = cur_.next++;
  const std::string& e = event;
  if (oracle_->ignored.contains(e)) return true;
  if (!oracle_->alphabet.contains(e)) {
    if (!oracle_->strict) return true;
    alive_ = false;
    verdict_.accepted = false;
    verdict_.divergence_index = at;
    verdict_.event = e;
    verdict_.offered = oracle_->automaton.offered(cur_.node);
    verdict_.reason = "event outside the oracle alphabet";
    return false;
  }
  const SymEdge* edge = oracle_->automaton.edge(cur_.node, e);
  if (edge == nullptr) {
    alive_ = false;
    verdict_.accepted = false;
    verdict_.divergence_index = at;
    verdict_.event = e;
    verdict_.offered = oracle_->automaton.offered(cur_.node);
    verdict_.reason = "spec offers no such event here";
    return false;
  }
  cur_.node = edge->target;
  return true;
}

TraceOracle compile_oracle(Context& ctx, std::string name, ProcessRef spec,
                           const EventSet& keep, bool strict,
                           std::size_t max_states, CancelToken* cancel) {
  TraceOracle oracle;
  oracle.name = std::move(name);
  oracle.automaton = compile_sym_automaton(ctx, spec, keep, max_states, cancel);
  for (EventId e : keep) oracle.alphabet.insert(ctx.event_name(e));
  oracle.strict = strict;
  return oracle;
}

}  // namespace ecucsp::conform
