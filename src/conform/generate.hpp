// Test-suite generation from the implementation model automaton.
//
// Three strategies (ecucsp_conform --suite):
//   * random          — seeded random walks over the model;
//   * cover           — greedy transition-coverage tours (a chinese-postman
//                       style cover: BFS to the nearest uncovered edge,
//                       traverse it, repeat) guaranteeing every plannable
//                       edge is exercised;
//   * counterexamples — replay of abstract attack traces (from live spec
//                       checks and from the PR 2 verification store),
//                       bridged to concrete stimuli by the suite layer.
//
// "Plannable" edges: the harness can only *inject* frames it knows how to
// build and can only *expect* frames the node emits by itself. An edge
// whose event is neither (e.g. the extractor's consume-and-ignore self-loop
// for a message only the node itself transmits) is excluded from walks and
// from the coverage denominator — exclusions are reported, never silent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "conform/automaton.hpp"

namespace ecucsp::conform {

struct TestCase {
  std::string name;
  std::string strategy;  // "random" | "cover" | "counterexample" | "dialogue"
  /// Planned abstract trace: stimuli the harness injects interleaved with
  /// the responses the model predicts.
  std::vector<std::string> events;
  /// Per-test harness seed (stimulus timing jitter).
  std::uint64_t seed = 0;
  /// Dialogue scenario: attach the VMG node and let it drive the exchange.
  bool dialogue = false;
  /// Fixed-time extra injections (attack frames mid-dialogue).
  std::vector<std::pair<std::uint64_t, std::string>> injections_at;
};

struct GeneratorOptions {
  std::uint64_t seed = 1;
  std::size_t tests = 16;    // random suite size
  std::size_t max_len = 12;  // random walk length cap
  /// Which edge events a planned trace may traverse (see header comment).
  std::function<bool(const std::string&)> plannable;
};

/// splitmix64 step — the repo-wide seeded stream (sim::Environment::rng
/// uses the same mixer, so seeds mean the same thing everywhere).
std::uint64_t splitmix64(std::uint64_t& state);

/// The plannable edges of `model` as (node, edge-index) pairs, sorted.
std::vector<std::pair<std::uint32_t, std::uint32_t>> plannable_edges(
    const SymAutomaton& model, const GeneratorOptions& opt);

/// `opt.tests` seeded random walks; walk i is fully determined by
/// (opt.seed, i) and never exceeds opt.max_len events.
std::vector<TestCase> generate_random(const SymAutomaton& model,
                                      const GeneratorOptions& opt);

/// Greedy tours covering every plannable edge reachable from the root via
/// plannable edges. Deterministic; returns as many tours as needed, each at
/// most 4 * opt.max_len events.
std::vector<TestCase> generate_cover(const SymAutomaton& model,
                                     const GeneratorOptions& opt);

/// Map an abstract spec counterexample (event names from the hand-built
/// OTA model, e.g. "send.reqApp.forged") onto the concrete test alphabet:
/// `bridge` renames, `drop` deletes unobservable internal events, and any
/// other event makes the trace unbridgeable (nullopt) — a stored trace from
/// some unrelated model must not silently become an empty test.
std::optional<TestCase> bridge_counterexample(
    const std::vector<std::string>& trace,
    const std::map<std::string, std::string>& bridge,
    const std::set<std::string>& drop, std::string name);

/// Distinct plannable edges of `model` traversed by walking `events` from
/// the root (the walk stops at the first event with no matching edge;
/// events outside the automaton alphabet are skipped). Shared by planned
/// and observed coverage accounting.
std::set<std::pair<std::uint32_t, std::uint32_t>> covered_edges(
    const SymAutomaton& model, const std::vector<std::string>& events);

}  // namespace ecucsp::conform
