#include "conform/harness.hpp"

#include <algorithm>

#include "capl/interp.hpp"
#include "sim/environment.hpp"

namespace ecucsp::conform {

std::string FrameCodec::abstract_frame(const can::CanFrame& f) const {
  const bool tx =
      std::find(tx_ids.begin(), tx_ids.end(), f.id) != tx_ids.end();
  const std::string& channel = tx ? tx_channel : rx_channel;
  auto it = ctor_of.find(f.id);
  if (it == ctor_of.end()) {
    return channel + ".Unknown" + std::to_string(f.id);
  }
  std::string ctor = it->second;
  if (mac_id && f.id == *mac_id &&
      f.byte(7) != static_cast<std::uint8_t>(mac_key ^ f.byte(0))) {
    ctor += "Bad";
  }
  return channel + "." + ctor;
}

std::vector<std::string> FrameCodec::abstract_trace(
    const std::vector<can::CanFrame>& frames) const {
  std::vector<std::string> out;
  out.reserve(frames.size());
  for (const can::CanFrame& f : frames) out.push_back(abstract_frame(f));
  return out;
}

std::optional<can::CanFrame> FrameCodec::concretize(
    const std::string& event) const {
  auto it = stimulus_frames.find(event);
  if (it == stimulus_frames.end()) return std::nullopt;
  return it->second;
}

FrameCodec ota_codec(const can::DbcDatabase& db, bool alphabet_mismatch) {
  FrameCodec codec;
  for (const auto& msg : db.messages) {
    codec.ctor_of[static_cast<can::CanId>(msg.id)] = msg.name;
  }
  if (alphabet_mismatch) {
    // Desynchronise one response name from the extracted model's alphabet:
    // the ECU's first reply now abstracts to a word the model has no edge
    // for, which the strict model oracle must reject at first sight.
    codec.ctor_of[0x101] = "SwStatusReport";
  }
  codec.tx_ids = {0x100, 0x103};  // VMG-transmitted ids ride 'send'
  codec.mac_id = 0x103;           // UpdApplyReq carries the toy MAC tag
  codec.mac_key = 0xA5;

  can::CanFrame req_sw;
  req_sw.id = 0x100;  // SwInventoryReq, all-zero payload
  codec.stimulus_frames["send.SwInventoryReq"] = req_sw;

  can::CanFrame req_app;
  req_app.id = 0x103;  // UpdApplyReq, module 1, valid tag
  req_app.set_byte(0, 1);
  req_app.set_byte(7, static_cast<std::uint8_t>(0xA5 ^ 1));
  codec.stimulus_frames["send.UpdApplyReq"] = req_app;

  can::CanFrame forged = req_app;  // same module, tag the attacker can make
  forged.set_byte(7, 0x00);
  codec.stimulus_frames["send.UpdApplyReqBad"] = forged;
  return codec;
}

// --- spans -------------------------------------------------------------------

std::string CaplSpan::to_string() const {
  return node + ":" + std::to_string(line) + ":" + std::to_string(column) +
         " (" + handler + ")";
}

std::vector<CaplSpan> SpanMap::lookup(const std::string& event) const {
  auto it = spans.find(event);
  return it == spans.end() ? std::vector<CaplSpan>{} : it->second;
}

namespace {

std::string handler_label(const capl::EventHandler& h) {
  using Kind = capl::EventHandler::Kind;
  switch (h.kind) {
    case Kind::Start:
      return "on start";
    case Kind::StopMeasurement:
      return "on stopMeasurement";
    case Kind::Message:
      return "on message " +
             (h.target.empty() ? std::to_string(h.msg_id) : h.target);
    case Kind::Timer:
      return "on timer " + h.target;
    case Kind::Key:
      return "on key " + h.target;
  }
  return "handler";
}

/// Names of message variables output() anywhere below `s`.
void collect_outputs(const capl::CaplStmt& s, std::vector<std::string>& out) {
  if (s.kind == capl::CStmtKind::ExprStmt && s.expr &&
      s.expr->kind == capl::CExprKind::Call && s.expr->text == "output" &&
      !s.expr->args.empty() &&
      s.expr->args[0]->kind == capl::CExprKind::Name) {
    out.push_back(s.expr->args[0]->text);
  }
  for (const auto& child : s.body) collect_outputs(*child, out);
  if (s.then_branch) collect_outputs(*s.then_branch, out);
  if (s.else_branch) collect_outputs(*s.else_branch, out);
  if (s.loop_body) collect_outputs(*s.loop_body, out);
}

}  // namespace

void add_program_spans(SpanMap& map, const capl::CaplProgram& prog,
                       const std::string& node_name, const FrameCodec& codec,
                       const std::string& tx_channel,
                       const std::string& rx_channel) {
  // Resolve a declared message variable to its MsgId constructor name.
  auto ctor_of_var = [&](const std::string& var) -> std::string {
    for (const auto& v : prog.variables) {
      if (v.name != var) continue;
      if (!v.msg_name.empty()) return v.msg_name;
      auto it = codec.ctor_of.find(static_cast<can::CanId>(v.msg_id));
      if (it != codec.ctor_of.end()) return it->second;
    }
    return {};
  };

  for (const auto& h : prog.handlers) {
    const CaplSpan span{node_name, handler_label(h), h.line, h.column};
    if (h.kind == capl::EventHandler::Kind::Message && !h.any_message) {
      std::string ctor = h.target;
      std::int64_t id = h.msg_id;
      if (ctor.empty() && id >= 0) {
        auto it = codec.ctor_of.find(static_cast<can::CanId>(id));
        if (it != codec.ctor_of.end()) ctor = it->second;
      }
      if (id < 0) {
        for (const auto& [cid, name] : codec.ctor_of) {
          if (name == ctor) id = cid;
        }
      }
      if (!ctor.empty()) {
        map.spans[rx_channel + "." + ctor].push_back(span);
        if (codec.mac_id && id == static_cast<std::int64_t>(*codec.mac_id)) {
          map.spans[rx_channel + "." + ctor + "Bad"].push_back(span);
        }
      }
    }
    if (h.body) {
      std::vector<std::string> outputs;
      collect_outputs(*h.body, outputs);
      for (const std::string& var : outputs) {
        const std::string ctor = ctor_of_var(var);
        if (!ctor.empty()) {
          map.spans[tx_channel + "." + ctor].push_back(span);
        }
      }
    }
  }
}

// --- execution ---------------------------------------------------------------

RunResult run_conformance_test(const capl::CaplProgram& ecu,
                               const capl::CaplProgram* vmg,
                               const can::DbcDatabase& db,
                               const FrameCodec& codec,
                               const std::vector<std::string>& planned,
                               const HarnessOptions& opt,
                               CancelToken* cancel) {
  sim::Environment env(/*bus_window_us=*/100, opt.seed);
  capl::CaplNode ecu_node("ECU", ecu, &db);
  env.attach(ecu_node);
  std::optional<capl::CaplNode> vmg_node;
  if (vmg != nullptr) {
    vmg_node.emplace("VMG", *vmg, &db);
    env.attach(*vmg_node);
  }

  // Stimuli land one settle window apart (plus seeded sub-window jitter),
  // so each response cascade drains before the next injection — planned
  // order is preserved on the bus whatever the seed. This quiescence
  // discipline is what keeps the event abstraction sound: the model's
  // pending-response states (a new request overtaking an outstanding
  // reply) are deliberately not driven, which is why observed transition
  // coverage can sit below planned coverage.
  std::vector<std::pair<std::uint64_t, can::CanFrame>> injections;
  std::uint64_t at = 0;
  for (const std::string& event : planned) {
    const auto frame = codec.concretize(event);
    if (!frame) continue;  // responses are expectations, not actions
    at += opt.settle_us + env.rng() % (opt.settle_us / 8 + 1);
    injections.emplace_back(at, *frame);
  }
  for (const auto& [when, event] : opt.injections_at) {
    const auto frame = codec.concretize(event);
    if (frame) injections.emplace_back(when, *frame);
  }
  for (const auto& [when, frame] : injections) {
    env.scheduler().schedule_at(
        when, [&env, f = frame] { env.inject(f); });
  }

  env.start();
  while (env.step(opt.deadline_us)) {
    if (cancel != nullptr) cancel->poll();
  }
  env.finish();

  RunResult out;
  out.observed = codec.abstract_trace(env.bus().trace());
  return out;
}

}  // namespace ecucsp::conform
