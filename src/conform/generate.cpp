#include "conform/generate.hpp"

#include <algorithm>
#include <deque>

#include "core/rng.hpp"

namespace ecucsp::conform {

std::uint64_t splitmix64(std::uint64_t& state) {
  // Kept as a conform-namespace entry point for existing callers (suite
  // generation, replay::synthesize_log); the definition lives in core.
  return core::splitmix64(state);
}

namespace {

/// plannable-ness per (node, edge index), precomputed once per generation.
std::vector<std::vector<bool>> plannable_mask(const SymAutomaton& model,
                                              const GeneratorOptions& opt) {
  std::vector<std::vector<bool>> mask(model.succ.size());
  for (std::size_t n = 0; n < model.succ.size(); ++n) {
    mask[n].resize(model.succ[n].size());
    for (std::size_t i = 0; i < model.succ[n].size(); ++i) {
      mask[n][i] = !opt.plannable || opt.plannable(model.succ[n][i].event);
    }
  }
  return mask;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> plannable_edges(
    const SymAutomaton& model, const GeneratorOptions& opt) {
  const auto mask = plannable_mask(model, opt);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t n = 0; n < mask.size(); ++n) {
    for (std::uint32_t i = 0; i < mask[n].size(); ++i) {
      if (mask[n][i]) out.emplace_back(n, i);
    }
  }
  return out;
}

std::vector<TestCase> generate_random(const SymAutomaton& model,
                                      const GeneratorOptions& opt) {
  const auto mask = plannable_mask(model, opt);
  std::vector<TestCase> out;
  out.reserve(opt.tests);
  for (std::size_t t = 0; t < opt.tests; ++t) {
    // Walk t is a function of (seed, t) alone, so suites are reproducible
    // and individual tests can be re-run in isolation.
    std::uint64_t rng = opt.seed ^ (0x51'7cc1'b727'220a95ULL * (t + 1));
    TestCase tc;
    tc.name = "random-" + std::to_string(t);
    tc.strategy = "random";
    tc.seed = splitmix64(rng);
    std::uint32_t node = model.root;
    for (std::size_t step = 0; step < opt.max_len; ++step) {
      std::vector<std::uint32_t> choices;
      for (std::uint32_t i = 0; i < model.succ[node].size(); ++i) {
        if (mask[node][i]) choices.push_back(i);
      }
      if (choices.empty()) break;
      const std::uint32_t pick =
          choices[splitmix64(rng) % choices.size()];
      tc.events.push_back(model.succ[node][pick].event);
      node = model.succ[node][pick].target;
    }
    out.push_back(std::move(tc));
  }
  return out;
}

std::vector<TestCase> generate_cover(const SymAutomaton& model,
                                     const GeneratorOptions& opt) {
  const auto mask = plannable_mask(model, opt);
  const std::size_t tour_cap = std::max<std::size_t>(4 * opt.max_len, 8);

  std::vector<std::vector<bool>> covered(mask.size());
  std::size_t uncovered = 0;
  for (std::size_t n = 0; n < mask.size(); ++n) {
    covered[n].resize(mask[n].size(), false);
    for (bool p : mask[n]) uncovered += p ? 1 : 0;
  }

  // BFS (plannable edges only) from `from` to the nearest node with an
  // uncovered outgoing edge; returns the edge-index path, empty if none.
  auto path_to_uncovered = [&](std::uint32_t from,
                               std::vector<std::uint32_t>& path_nodes,
                               std::vector<std::uint32_t>& path_edges) {
    std::vector<std::int64_t> pred_node(model.succ.size(), -1);
    std::vector<std::uint32_t> pred_edge(model.succ.size(), 0);
    std::vector<bool> seen(model.succ.size(), false);
    std::deque<std::uint32_t> queue{from};
    seen[from] = true;
    std::int64_t goal = -1;
    while (!queue.empty()) {
      const std::uint32_t n = queue.front();
      queue.pop_front();
      bool has_uncovered = false;
      for (std::uint32_t i = 0; i < mask[n].size(); ++i) {
        if (mask[n][i] && !covered[n][i]) has_uncovered = true;
      }
      if (has_uncovered) {
        goal = n;
        break;
      }
      for (std::uint32_t i = 0; i < model.succ[n].size(); ++i) {
        if (!mask[n][i]) continue;
        const std::uint32_t to = model.succ[n][i].target;
        if (seen[to]) continue;
        seen[to] = true;
        pred_node[to] = n;
        pred_edge[to] = i;
        queue.push_back(to);
      }
    }
    path_nodes.clear();
    path_edges.clear();
    if (goal < 0) return false;
    for (std::uint32_t n = static_cast<std::uint32_t>(goal); n != from;
         n = static_cast<std::uint32_t>(pred_node[n])) {
      path_nodes.push_back(n);
      path_edges.push_back(pred_edge[n]);
    }
    std::reverse(path_nodes.begin(), path_nodes.end());
    std::reverse(path_edges.begin(), path_edges.end());
    return true;
  };

  std::vector<TestCase> out;
  std::uint64_t rng = opt.seed ^ 0xc0fe'1234'5678'9abcULL;
  while (uncovered > 0) {
    TestCase tc;
    tc.name = "cover-" + std::to_string(out.size());
    tc.strategy = "cover";
    tc.seed = splitmix64(rng);
    std::uint32_t node = model.root;
    while (tc.events.size() < tour_cap) {
      std::vector<std::uint32_t> path_nodes, path_edges;
      if (!path_to_uncovered(node, path_nodes, path_edges)) break;
      // Traverse the connecting path, then the uncovered edge itself;
      // everything walked counts as covered.
      std::uint32_t at = node;
      for (std::size_t k = 0; k < path_edges.size(); ++k) {
        const std::uint32_t i = path_edges[k];
        tc.events.push_back(model.succ[at][i].event);
        if (!covered[at][i] && mask[at][i]) {
          covered[at][i] = true;
          --uncovered;
        }
        at = path_nodes[k];
      }
      std::uint32_t take = 0;
      bool found = false;
      for (std::uint32_t i = 0; i < mask[at].size(); ++i) {
        if (mask[at][i] && !covered[at][i]) {
          take = i;
          found = true;
          break;
        }
      }
      if (!found) break;  // path edges already consumed the goal's edges
      tc.events.push_back(model.succ[at][take].event);
      covered[at][take] = true;
      --uncovered;
      node = model.succ[at][take].target;
    }
    if (tc.events.empty()) break;  // remaining edges unreachable from root
    out.push_back(std::move(tc));
  }
  return out;
}

std::optional<TestCase> bridge_counterexample(
    const std::vector<std::string>& trace,
    const std::map<std::string, std::string>& bridge,
    const std::set<std::string>& drop, std::string name) {
  TestCase tc;
  tc.name = std::move(name);
  tc.strategy = "counterexample";
  for (const std::string& e : trace) {
    if (drop.contains(e)) continue;
    auto it = bridge.find(e);
    if (it == bridge.end()) return std::nullopt;
    tc.events.push_back(it->second);
  }
  if (tc.events.empty()) return std::nullopt;
  return tc;
}

std::set<std::pair<std::uint32_t, std::uint32_t>> covered_edges(
    const SymAutomaton& model, const std::vector<std::string>& events) {
  const std::set<std::string> alphabet = model.event_alphabet();
  std::set<std::pair<std::uint32_t, std::uint32_t>> out;
  std::uint32_t node = model.root;
  for (const std::string& e : events) {
    if (!alphabet.contains(e)) continue;  // attacker frames, renamed events
    const auto& es = model.succ[node];
    std::uint32_t idx = SymAutomaton::NONE;
    for (std::uint32_t i = 0; i < es.size(); ++i) {
      if (es[i].event == e) {
        idx = i;
        break;
      }
    }
    if (idx == SymAutomaton::NONE) break;  // trace left the model here
    out.insert({node, idx});
    node = es[idx].target;
  }
  return out;
}

}  // namespace ecucsp::conform
