// CSPm lexer. Handles '--' line comments and nested '{- -}' block comments.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cspm/token.hpp"

namespace ecucsp::cspm {

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, int line, int column)
      : std::runtime_error("lex error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what),
        line(line),
        column(column) {}
  int line;
  int column;
};

std::vector<Token> lex(std::string_view source);

}  // namespace ecucsp::cspm
