#include "cspm/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace ecucsp::cspm {

std::string to_string(Tok k) {
  switch (k) {
    case Tok::End: return "<end>";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::KwChannel: return "'channel'";
    case Tok::KwDatatype: return "'datatype'";
    case Tok::KwNametype: return "'nametype'";
    case Tok::KwAssert: return "'assert'";
    case Tok::KwIf: return "'if'";
    case Tok::KwThen: return "'then'";
    case Tok::KwElse: return "'else'";
    case Tok::KwLet: return "'let'";
    case Tok::KwWithin: return "'within'";
    case Tok::KwStop: return "'STOP'";
    case Tok::KwSkip: return "'SKIP'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwNot: return "'not'";
    case Tok::KwAnd: return "'and'";
    case Tok::KwOr: return "'or'";
    case Tok::Arrow: return "'->'";
    case Tok::LArrow: return "'<-'";
    case Tok::ExtChoice: return "'[]'";
    case Tok::IntChoice: return "'|~|'";
    case Tok::Interleave: return "'|||'";
    case Tok::LSync: return "'[|'";
    case Tok::RSync: return "'|]'";
    case Tok::LRenameB: return "'[['";
    case Tok::RRenameB: return "']]'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::LBraceBar: return "'{|'";
    case Tok::RBraceBar: return "'|}'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::ParSplit: return "'||'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Dot: return "'.'";
    case Tok::DotDot: return "'..'";
    case Tok::Question: return "'?'";
    case Tok::Bang: return "'!'";
    case Tok::Equals: return "'='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Less: return "'<'";
    case Tok::Greater: return "'>'";
    case Tok::LessEq: return "'<='";
    case Tok::GreaterEq: return "'>='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Backslash: return "'\\'";
    case Tok::At: return "'@'";
    case Tok::Colon: return "':'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::InterruptOp: return "'/\\'";
    case Tok::SlideOp: return "'[>'";
    case Tok::RefinesT: return "'[T='";
    case Tok::RefinesF: return "'[F='";
    case Tok::RefinesFD: return "'[FD='";
    case Tok::ColonLBracket: return "':['";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"channel", Tok::KwChannel}, {"datatype", Tok::KwDatatype},
    {"nametype", Tok::KwNametype}, {"assert", Tok::KwAssert},
    {"if", Tok::KwIf},           {"then", Tok::KwThen},
    {"else", Tok::KwElse},       {"let", Tok::KwLet},
    {"within", Tok::KwWithin},   {"STOP", Tok::KwStop},
    {"SKIP", Tok::KwSkip},       {"true", Tok::KwTrue},
    {"false", Tok::KwFalse},     {"not", Tok::KwNot},
    {"and", Tok::KwAnd},         {"or", Tok::KwOr},
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  const auto starts = [&](std::string_view s) {
    return src.substr(i).starts_with(s);
  };
  const auto push = [&](Tok kind, std::size_t len, std::string text = {}) {
    out.push_back({kind, std::move(text), 0, line, col});
    advance(len);
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Comments.
    if (starts("--")) {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (starts("{-")) {
      int depth = 1;
      const int start_line = line;
      advance(2);
      while (i < src.size() && depth > 0) {
        if (starts("{-")) {
          ++depth;
          advance(2);
        } else if (starts("-}")) {
          --depth;
          advance(2);
        } else {
          advance(1);
        }
      }
      if (depth > 0) throw LexError("unterminated block comment", start_line, 1);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) {
        ++j;
      }
      Token t{Tok::Number, std::string(src.substr(i, j - i)), 0, line, col};
      t.number = std::stoll(t.text);
      out.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    // Identifiers / keywords. CSPm names may contain primes and underscores.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_' || src[j] == '\'')) {
        ++j;
      }
      const std::string_view word = src.substr(i, j - i);
      if (auto it = kKeywords.find(word); it != kKeywords.end()) {
        push(it->second, word.size());
      } else {
        push(Tok::Ident, word.size(), std::string(word));
      }
      continue;
    }
    // Multi-character operators, longest first.
    if (starts("/\\")) { push(Tok::InterruptOp, 2); continue; }
    if (starts("[>")) { push(Tok::SlideOp, 2); continue; }
    if (starts("[FD=")) { push(Tok::RefinesFD, 4); continue; }
    if (starts("[T=")) { push(Tok::RefinesT, 3); continue; }
    if (starts("[F=")) { push(Tok::RefinesF, 3); continue; }
    if (starts("|~|")) { push(Tok::IntChoice, 3); continue; }
    if (starts("|||")) { push(Tok::Interleave, 3); continue; }
    if (starts("->")) { push(Tok::Arrow, 2); continue; }
    if (starts("<-")) { push(Tok::LArrow, 2); continue; }
    if (starts("[]")) { push(Tok::ExtChoice, 2); continue; }
    if (starts("[|")) { push(Tok::LSync, 2); continue; }
    if (starts("|]")) { push(Tok::RSync, 2); continue; }
    if (starts("[[")) { push(Tok::LRenameB, 2); continue; }
    if (starts("]]")) { push(Tok::RRenameB, 2); continue; }
    if (starts("{|")) { push(Tok::LBraceBar, 2); continue; }
    if (starts("|}")) { push(Tok::RBraceBar, 2); continue; }
    if (starts("||")) { push(Tok::ParSplit, 2); continue; }
    if (starts("..")) { push(Tok::DotDot, 2); continue; }
    if (starts("==")) { push(Tok::EqEq, 2); continue; }
    if (starts("!=")) { push(Tok::NotEq, 2); continue; }
    if (starts("<=")) { push(Tok::LessEq, 2); continue; }
    if (starts(">=")) { push(Tok::GreaterEq, 2); continue; }
    if (starts(":[")) { push(Tok::ColonLBracket, 2); continue; }
    switch (c) {
      case '[': push(Tok::LBracket, 1); continue;
      case ']': push(Tok::RBracket, 1); continue;
      case '{': push(Tok::LBrace, 1); continue;
      case '}': push(Tok::RBrace, 1); continue;
      case '(': push(Tok::LParen, 1); continue;
      case ')': push(Tok::RParen, 1); continue;
      case ';': push(Tok::Semi, 1); continue;
      case ',': push(Tok::Comma, 1); continue;
      case '.': push(Tok::Dot, 1); continue;
      case '?': push(Tok::Question, 1); continue;
      case '!': push(Tok::Bang, 1); continue;
      case '=': push(Tok::Equals, 1); continue;
      case '<': push(Tok::Less, 1); continue;
      case '>': push(Tok::Greater, 1); continue;
      case '+': push(Tok::Plus, 1); continue;
      case '-': push(Tok::Minus, 1); continue;
      case '*': push(Tok::Star, 1); continue;
      case '/': push(Tok::Slash, 1); continue;
      case '%': push(Tok::Percent, 1); continue;
      case '\\': push(Tok::Backslash, 1); continue;
      case '@': push(Tok::At, 1); continue;
      case ':': push(Tok::Colon, 1); continue;
      case '&': push(Tok::Amp, 1); continue;
      case '|': push(Tok::Pipe, 1); continue;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", line,
                       col);
    }
  }
  out.push_back({Tok::End, {}, 0, line, col});
  return out;
}

}  // namespace ecucsp::cspm
