// Recursive-descent parser for the CSPm subset.
//
// Operator precedence (loosest binds last), following the FDR convention:
//   if/let  <  ||| [|A|] [A||B]  <  |~|  <  []  <  \  <  ;  <  & / ->
//   <  or < and < not < comparisons < + - < * / % < unary - < postfix < atom
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "cspm/ast.hpp"

namespace ecucsp::cspm {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line, int column)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what),
        line(line),
        column(column) {}
  int line;
  int column;
};

/// Parse a whole CSPm script (declarations, definitions, assertions).
Script parse_cspm(std::string_view source);

/// Parse a single CSPm expression/process (used by tests and tools).
ExprPtr parse_cspm_expression(std::string_view source);

}  // namespace ecucsp::cspm
