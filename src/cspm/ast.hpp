// Abstract syntax for the CSPm subset.
//
// CSPm is a functional language whose values include processes, so a single
// Expr type covers data expressions and process terms; the evaluator
// type-checks dynamically, as FDR's does.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ecucsp::cspm {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  Number,
  Bool,
  Name,
  Call,       // head name + args
  Dot,        // kids[0] . kids[1]   (datatype/channel value composition)
  Tuple,      // (a, b, ...)
  SetLit,     // {a, b, ...}
  SetComp,    // { kids[0] | gens, conditions in kids[1..] }
  SetRange,   // {a..b}
  ChanSet,    // {| c, d |}
  BinOp,
  UnOp,
  If,         // kids = cond, then, else
  Let,        // bindings + kids[0] = body
  Stop,
  Skip,
  Prefix,     // head/fields, kids[0] = continuation
  Guard,      // kids[0] & kids[1]
  ExtChoice,  // kids[0] [] kids[1]
  IntChoice,
  Seq,
  Interleave,
  SyncPar,    // kids[0] [| sync |] kids[1], sync in kids[2]
  AlphaPar,   // kids[0] [ A || B ] kids[1]; A = kids[2], B = kids[3]
  InterruptE, // kids[0] /\ kids[1]
  SlidingE,   // kids[0] [> kids[1]
  Hide,       // kids[0] \ kids[1]
  Rename,     // kids[0] [[ renames ]]
  Replicated, // rep_op over gens @ kids[0]; SyncPar also uses kids[1] = sync
};

enum class BinOpKind : std::uint8_t {
  Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Gt, Le, Ge, And, Or,
};
enum class UnOpKind : std::uint8_t { Neg, Not };

/// One communication item following a channel head: '?x', '?x:S', '!e'.
/// Plain '.e' items are folded into the head as Dot nodes.
struct CommField {
  enum class Kind : std::uint8_t { Input, Output } kind = Kind::Output;
  std::string var;      // Input binder
  ExprPtr restriction;  // optional Input ':S'
  ExprPtr expr;         // Output expression
};

/// 'x : S' in a replicated operator.
struct Generator {
  std::string var;
  ExprPtr set;
};

struct RenameItem {
  ExprPtr from;
  ExprPtr to;
};

struct LetBinding {
  std::string name;
  std::vector<std::string> params;
  ExprPtr body;
};

struct Expr {
  ExprKind kind = ExprKind::Number;
  int line = 0;
  int column = 0;

  std::int64_t number = 0;           // Number
  bool boolean = false;              // Bool
  std::string name;                  // Name, Call head
  std::vector<ExprPtr> kids;         // operands / elements / Call args
  BinOpKind binop = BinOpKind::Add;  // BinOp
  UnOpKind unop = UnOpKind::Neg;     // UnOp

  ExprPtr head;                   // Prefix: channel-value head
  std::vector<CommField> fields;  // Prefix

  std::vector<Generator> gens;           // Replicated
  ExprKind rep_op = ExprKind::ExtChoice; // Replicated operator
  std::vector<RenameItem> renames;       // Rename
  std::vector<LetBinding> bindings;      // Let
};

// --- declarations -----------------------------------------------------------

struct ChannelDeclAst {
  std::vector<std::string> names;
  std::vector<ExprPtr> field_types;  // empty for bare channels
  int line = 0;
};

struct DatatypeDeclAst {
  std::string name;
  std::vector<std::string> constructors;
  int line = 0;
};

struct NametypeDeclAst {
  std::string name;
  ExprPtr type;
  int line = 0;
};

struct DefinitionAst {
  std::string name;
  std::vector<std::string> params;
  ExprPtr body;
  int line = 0;
};

struct AssertionAst {
  enum class Kind : std::uint8_t {
    RefinesT,
    RefinesF,
    RefinesFD,
    DeadlockFree,
    DivergenceFree,
    Deterministic,
  };
  Kind kind = Kind::RefinesT;
  ExprPtr lhs;
  ExprPtr rhs;  // refinement assertions only
  int line = 0;
};

std::string to_string(AssertionAst::Kind k);

struct Script {
  std::vector<ChannelDeclAst> channels;
  std::vector<DatatypeDeclAst> datatypes;
  std::vector<NametypeDeclAst> nametypes;
  std::vector<DefinitionAst> definitions;
  std::vector<AssertionAst> assertions;
};

}  // namespace ecucsp::cspm
