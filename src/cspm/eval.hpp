// CSPm evaluator: binds a parsed Script to core process terms in a Context,
// and runs the script's assertions through the refinement engine.
//
// CSPm is dynamically typed (like FDR's evaluator): a runtime CVal is an
// integer, boolean, datum, finite set, event set, (possibly partially
// applied) channel, function closure, or process. Type errors surface as
// EvalError with source location.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/context.hpp"
#include "cspm/ast.hpp"
#include "refine/check.hpp"

namespace ecucsp::cspm {

class EvalError : public std::runtime_error {
 public:
  EvalError(const std::string& what, int line, int column)
      : std::runtime_error("evaluation error at " + std::to_string(line) +
                           ":" + std::to_string(column) + ": " + what),
        line(line),
        column(column) {}
  int line;
  int column;
};

/// Runtime value of a CSPm expression.
class CVal {
 public:
  enum class Kind : std::uint8_t {
    Int,
    Bool,
    Data,      // datatype constructor constants, tuples
    Set,       // finite set of data values (sorted unique)
    Events,    // set of events (sync/hide sets, channel productions)
    Channel,   // channel, possibly partially applied to leading fields
    Closure,   // user function (from a parameterised let binding / def)
    Process,
  };

  Kind kind = Kind::Int;
  std::int64_t integer = 0;
  bool boolean = false;
  Value data;
  std::shared_ptr<const std::vector<Value>> set;  // sorted unique
  EventSet events;
  ChannelId chan = 0;
  std::vector<Value> chan_fields;  // leading fields already applied
  ProcessRef process = nullptr;
  // Closure payload:
  const void* closure_body = nullptr;  // const Expr*
  std::vector<std::string> closure_params;
  std::shared_ptr<const std::map<std::string, CVal>> closure_env;
  std::string closure_name;

  static CVal of_int(std::int64_t v);
  static CVal of_bool(bool v);
  static CVal of_data(Value v);
  static CVal of_set(std::vector<Value> items);
  static CVal of_events(EventSet es);
  static CVal of_process(ProcessRef p);

  std::string kind_name() const;
};

struct AssertionResult {
  AssertionAst::Kind kind = AssertionAst::Kind::RefinesT;
  std::string description;  // e.g. "SPEC [T= SYSTEM"
  CheckResult result;
  int line = 0;
};

/// The (spec, impl, model) triple a Refines* assertion would hand to
/// check_refinement — the same eval_process results check_assertion uses.
/// Lets the verify layer's static pruner inspect the terms without running
/// the check. Property assertions (:[deadlock free] etc.) have no such
/// decomposition.
struct AssertionTerms {
  ProcessRef spec = nullptr;
  ProcessRef impl = nullptr;
  Model model = Model::Traces;
};

class Evaluator {
 public:
  explicit Evaluator(Context& ctx) : ctx_(ctx) {}

  /// Declare channels/datatypes/nametypes and register the definitions.
  /// Takes ownership of the AST. Multiple scripts may be loaded into one
  /// Context (e.g. an extracted implementation model plus a spec model).
  void load(Script script);

  /// Convenience: parse then load.
  void load_source(std::string_view source);

  /// Evaluate a named parameterless definition to a process.
  ProcessRef process(const std::string& name);
  /// Evaluate an arbitrary CSPm expression string in the global scope.
  CVal evaluate_expression(const std::string& source);

  /// Run every 'assert' in the loaded scripts.
  std::vector<AssertionResult> check_assertions(
      std::size_t max_states = 1u << 22);

  /// Number of 'assert' declarations across the loaded scripts.
  std::size_t assertion_count() const { return assertions_.size(); }

  /// Run a single assertion by script order. The optional CancelToken is
  /// polled inside the underlying check; this is what lets the src/verify
  /// scheduler run one assertion per worker with a per-check deadline.
  AssertionResult check_assertion(std::size_t index,
                                  std::size_t max_states = 1u << 22,
                                  CancelToken* cancel = nullptr);

  /// Evaluate assertion `index`'s terms without running the check. Returns
  /// nullopt for non-refinement assertions. Evaluation is memoised, so a
  /// following check_assertion(index) reuses the same hash-consed terms.
  std::optional<AssertionTerms> assertion_terms(std::size_t index);

  Context& context() { return ctx_; }

 private:
  using Env = std::map<std::string, CVal>;

  CVal eval(const Expr& e, const Env& env);
  ProcessRef eval_process(const Expr& e, const Env& env);
  EventSet eval_event_set(const Expr& e, const Env& env);
  Value eval_data(const Expr& e, const Env& env);
  std::vector<Value> eval_set(const Expr& e, const Env& env);
  bool eval_bool(const Expr& e, const Env& env);

  CVal lookup(const std::string& name, const Env& env, const Expr& where);
  CVal call(const std::string& name, std::vector<CVal> args, const Env& env,
            const Expr& where);
  CVal reference_definition(const DefinitionAst& def, std::vector<CVal> args,
                            const Expr& where);

  ProcessRef expand_prefix(const Expr& prefix, const CVal& head,
                           std::size_t next_field, std::vector<Value> fields,
                           const Env& env);

  /// All events of all user-declared channels: the script's Sigma.
  EventSet full_alphabet();

  CVal to_cval(const Value& v) const;
  Value to_data(const CVal& v, const Expr& where) const;
  EventSet to_events(const CVal& v, const Expr& where);
  EventId complete_event(const CVal& chan_val, const Expr& where);

  [[noreturn]] void error(const Expr& e, const std::string& msg) const {
    throw EvalError(msg, e.line, e.column);
  }

  Context& ctx_;
  // Globals. Definitions are stored by pointer into owned copies of scripts.
  std::vector<std::unique_ptr<Script>> scripts_;
  std::unordered_map<std::string, const DefinitionAst*> defs_;
  Env globals_;  // channels, datatype constructors, nametypes
  std::vector<const AssertionAst*> assertions_;

  // Recursion detection for definition evaluation.
  struct DefKey {
    std::string name;
    std::vector<Value> args;
    bool operator==(const DefKey&) const = default;
  };
  struct DefKeyHash {
    std::size_t operator()(const DefKey& k) const {
      return hash_combine(std::hash<std::string>{}(k.name),
                          hash_values(k.args));
    }
  };
  std::unordered_set<DefKey, DefKeyHash> in_progress_;
  std::unordered_map<DefKey, CVal, DefKeyHash> memo_;
};

}  // namespace ecucsp::cspm
