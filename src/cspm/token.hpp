// Token stream for the CSPm machine-readable dialect of CSP (Scattergood &
// Armstrong, "CSPm: A Reference Manual") — the subset exercised by the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ecucsp::cspm {

enum class Tok : std::uint8_t {
  End,
  Ident,      // names: processes, channels, variables, constructors
  Number,     // integer literal
  // keywords
  KwChannel,
  KwDatatype,
  KwNametype,
  KwAssert,
  KwIf,
  KwThen,
  KwElse,
  KwLet,
  KwWithin,
  KwStop,
  KwSkip,
  KwTrue,
  KwFalse,
  KwNot,
  KwAnd,
  KwOr,
  // punctuation / operators
  Arrow,       // ->
  LArrow,      // <-
  ExtChoice,   // []
  IntChoice,   // |~|
  Interleave,  // |||
  LSync,       // [|
  RSync,       // |]
  LRenameB,    // [[
  RRenameB,    // ]]
  LBracket,    // [
  RBracket,    // ]
  LBraceBar,   // {|
  RBraceBar,   // |}
  LBrace,      // {
  RBrace,      // }
  LParen,      // (
  RParen,      // )
  ParSplit,    // || (inside [A||B])
  Semi,        // ;
  Comma,       // ,
  Dot,         // .
  DotDot,      // ..
  Question,    // ?
  Bang,        // !
  Equals,      // =
  EqEq,        // ==
  NotEq,       // !=
  Less,        // <
  Greater,     // >
  LessEq,      // <=
  GreaterEq,   // >=
  Plus,        // +
  Minus,       // -
  Star,        // *
  Slash,       // /
  Percent,     // %
  Backslash,   // hiding
  At,          // @
  Colon,       // :
  Amp,         // & (boolean guard)
  Pipe,        // |
  InterruptOp, // the interrupt operator (slash-backslash)
  SlideOp,     // [>
  RefinesT,    // [T=
  RefinesF,    // [F=
  RefinesFD,   // [FD=
  ColonLBracket,  // :[  (assertion properties)
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // Ident spelling / Number digits
  std::int64_t number = 0;
  int line = 0;
  int column = 0;
};

std::string to_string(Tok k);

}  // namespace ecucsp::cspm
