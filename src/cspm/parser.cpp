#include "cspm/parser.hpp"

#include "cspm/lexer.hpp"

namespace ecucsp::cspm {

std::string to_string(AssertionAst::Kind k) {
  switch (k) {
    case AssertionAst::Kind::RefinesT: return "[T=";
    case AssertionAst::Kind::RefinesF: return "[F=";
    case AssertionAst::Kind::RefinesFD: return "[FD=";
    case AssertionAst::Kind::DeadlockFree: return "deadlock free";
    case AssertionAst::Kind::DivergenceFree: return "divergence free";
    case AssertionAst::Kind::Deterministic: return "deterministic";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  Script script() {
    Script out;
    while (!at(Tok::End)) {
      if (at(Tok::KwChannel)) {
        out.channels.push_back(channel_decl());
      } else if (at(Tok::KwDatatype)) {
        out.datatypes.push_back(datatype_decl());
      } else if (at(Tok::KwNametype)) {
        out.nametypes.push_back(nametype_decl());
      } else if (at(Tok::KwAssert)) {
        out.assertions.push_back(assertion());
      } else if (at(Tok::Ident)) {
        out.definitions.push_back(definition());
      } else {
        fail("expected a declaration, definition or assertion");
      }
    }
    return out;
  }

  ExprPtr single_expression() {
    ExprPtr e = expr();
    expect(Tok::End, "trailing input after expression");
    return e;
  }

 private:
  // --- token helpers --------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  bool at(Tok k, std::size_t ahead = 0) const { return peek(ahead).kind == k; }
  Token take() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok k, const std::string& what) {
    if (!at(k)) {
      fail("expected " + to_string(k) + " (" + what + "), found " +
           to_string(peek().kind));
    }
    return take();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, peek().line, peek().column);
  }

  ExprPtr make(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = peek().line;
    e->column = peek().column;
    return e;
  }
  static ExprPtr binary(ExprKind kind, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = l->line;
    e->column = l->column;
    e->kids.push_back(std::move(l));
    e->kids.push_back(std::move(r));
    return e;
  }

  // --- declarations --------------------------------------------------------
  ChannelDeclAst channel_decl() {
    ChannelDeclAst out;
    out.line = peek().line;
    expect(Tok::KwChannel, "channel declaration");
    out.names.push_back(expect(Tok::Ident, "channel name").text);
    while (accept(Tok::Comma)) {
      out.names.push_back(expect(Tok::Ident, "channel name").text);
    }
    if (accept(Tok::Colon)) {
      out.field_types.push_back(dot_type());
      while (accept(Tok::Dot)) out.field_types.push_back(dot_type());
    }
    return out;
  }

  /// One field type of a channel: calls allowed, but dots NOT collected,
  /// so that 'channel c : T.S' splits into one field per dot.
  ExprPtr dot_type() { return postfix_no_dot(); }

  DatatypeDeclAst datatype_decl() {
    DatatypeDeclAst out;
    out.line = peek().line;
    expect(Tok::KwDatatype, "datatype declaration");
    out.name = expect(Tok::Ident, "datatype name").text;
    expect(Tok::Equals, "datatype '='");
    out.constructors.push_back(expect(Tok::Ident, "constructor").text);
    while (accept(Tok::Pipe)) {
      out.constructors.push_back(expect(Tok::Ident, "constructor").text);
    }
    return out;
  }

  NametypeDeclAst nametype_decl() {
    NametypeDeclAst out;
    out.line = peek().line;
    expect(Tok::KwNametype, "nametype declaration");
    out.name = expect(Tok::Ident, "nametype name").text;
    expect(Tok::Equals, "nametype '='");
    out.type = expr();
    return out;
  }

  DefinitionAst definition() {
    DefinitionAst out;
    out.line = peek().line;
    out.name = expect(Tok::Ident, "definition name").text;
    if (accept(Tok::LParen)) {
      out.params.push_back(expect(Tok::Ident, "parameter").text);
      while (accept(Tok::Comma)) {
        out.params.push_back(expect(Tok::Ident, "parameter").text);
      }
      expect(Tok::RParen, "parameter list");
    }
    expect(Tok::Equals, "definition '='");
    out.body = expr();
    return out;
  }

  AssertionAst assertion() {
    AssertionAst out;
    out.line = peek().line;
    expect(Tok::KwAssert, "assertion");
    out.lhs = expr();
    if (accept(Tok::RefinesT)) {
      out.kind = AssertionAst::Kind::RefinesT;
      out.rhs = expr();
    } else if (accept(Tok::RefinesF)) {
      out.kind = AssertionAst::Kind::RefinesF;
      out.rhs = expr();
    } else if (accept(Tok::RefinesFD)) {
      out.kind = AssertionAst::Kind::RefinesFD;
      out.rhs = expr();
    } else if (accept(Tok::ColonLBracket)) {
      const std::string prop = expect(Tok::Ident, "property name").text;
      if (prop == "deadlock") {
        expect_ident("free");
        out.kind = AssertionAst::Kind::DeadlockFree;
      } else if (prop == "divergence") {
        expect_ident("free");
        out.kind = AssertionAst::Kind::DivergenceFree;
      } else if (prop == "deterministic") {
        out.kind = AssertionAst::Kind::Deterministic;
      } else {
        fail("unknown assertion property '" + prop + "'");
      }
      // Optional semantic-model annotation '[F]' / '[FD]' / '[T]'.
      if (accept(Tok::LBracket)) {
        expect(Tok::Ident, "model annotation");
        // '[F]]' lexes the closing as ']' ']' or ']]'.
        if (!accept(Tok::RRenameB)) {
          expect(Tok::RBracket, "model annotation close");
          expect(Tok::RBracket, "assertion close");
        }
      } else {
        expect(Tok::RBracket, "assertion close");
      }
    } else {
      fail("expected a refinement operator or ':[' property");
    }
    return out;
  }

  void expect_ident(const std::string& word) {
    const Token t = expect(Tok::Ident, "'" + word + "'");
    if (t.text != word) fail("expected '" + word + "', found '" + t.text + "'");
  }

  // --- expression / process grammar ---------------------------------------
  ExprPtr expr() { return if_let(); }

  ExprPtr if_let() {
    if (at(Tok::KwIf)) {
      auto e = make(ExprKind::If);
      take();
      e->kids.push_back(expr());
      expect(Tok::KwThen, "if-then");
      e->kids.push_back(expr());
      expect(Tok::KwElse, "if-else");
      e->kids.push_back(expr());
      return e;
    }
    if (at(Tok::KwLet)) {
      auto e = make(ExprKind::Let);
      take();
      do {
        LetBinding b;
        b.name = expect(Tok::Ident, "let binding name").text;
        if (accept(Tok::LParen)) {
          b.params.push_back(expect(Tok::Ident, "parameter").text);
          while (accept(Tok::Comma)) {
            b.params.push_back(expect(Tok::Ident, "parameter").text);
          }
          expect(Tok::RParen, "parameter list");
        }
        expect(Tok::Equals, "let binding '='");
        b.body = expr();
        e->bindings.push_back(std::move(b));
      } while (!at(Tok::KwWithin) && at(Tok::Ident));
      expect(Tok::KwWithin, "let-within");
      e->kids.push_back(expr());
      return e;
    }
    return parallel();
  }

  ExprPtr parallel() {
    ExprPtr lhs = int_choice();
    for (;;) {
      if (accept(Tok::Interleave)) {
        lhs = binary(ExprKind::Interleave, std::move(lhs), int_choice());
      } else if (at(Tok::LSync)) {
        take();
        ExprPtr sync = expr();
        expect(Tok::RSync, "'|]' of synchronised parallel");
        auto e = binary(ExprKind::SyncPar, std::move(lhs), nullptr);
        e->kids[1] = int_choice();
        e->kids.push_back(std::move(sync));
        lhs = std::move(e);
      } else if (at(Tok::LBracket)) {
        take();
        ExprPtr alpha_l = expr();
        expect(Tok::ParSplit, "'||' of alphabetised parallel");
        ExprPtr alpha_r = expr();
        expect(Tok::RBracket, "']' of alphabetised parallel");
        auto e = binary(ExprKind::AlphaPar, std::move(lhs), nullptr);
        e->kids[1] = int_choice();
        e->kids.push_back(std::move(alpha_l));
        e->kids.push_back(std::move(alpha_r));
        lhs = std::move(e);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr int_choice() {
    ExprPtr lhs = ext_choice();
    while (at(Tok::IntChoice) && !starts_replicated()) {
      take();
      lhs = binary(ExprKind::IntChoice, std::move(lhs), ext_choice());
    }
    return lhs;
  }

  ExprPtr ext_choice() {
    ExprPtr lhs = interrupt_level();
    while (at(Tok::ExtChoice) && !starts_replicated()) {
      take();
      lhs = binary(ExprKind::ExtChoice, std::move(lhs), interrupt_level());
    }
    return lhs;
  }

  ExprPtr interrupt_level() {
    ExprPtr lhs = hiding();
    for (;;) {
      if (accept(Tok::InterruptOp)) {
        lhs = binary(ExprKind::InterruptE, std::move(lhs), hiding());
      } else if (accept(Tok::SlideOp)) {
        lhs = binary(ExprKind::SlidingE, std::move(lhs), hiding());
      } else {
        return lhs;
      }
    }
  }

  /// Lookahead: an operator token at operand position introduces a
  /// replicated form ('[] x:S @ P'); after an operand it is infix. This is
  /// only consulted *between* operands, so it always means infix here —
  /// kept for clarity and future replicated-infix disambiguation.
  bool starts_replicated() const { return false; }

  ExprPtr hiding() {
    ExprPtr lhs = sequential();
    while (accept(Tok::Backslash)) {
      lhs = binary(ExprKind::Hide, std::move(lhs), postfix());
    }
    return lhs;
  }

  ExprPtr sequential() {
    ExprPtr lhs = guard_or_prefix();
    while (accept(Tok::Semi)) {
      lhs = binary(ExprKind::Seq, std::move(lhs), guard_or_prefix());
    }
    return lhs;
  }

  /// Handles boolean guards 'b & P', communications 'c?x!e -> P', and plain
  /// value expressions, which all start with an or-level expression.
  ExprPtr guard_or_prefix() {
    ExprPtr head = or_expr();
    if (accept(Tok::Amp)) {
      return binary(ExprKind::Guard, std::move(head), guard_or_prefix());
    }
    // Collect communication fields.
    std::vector<CommField> fields;
    for (;;) {
      if (accept(Tok::Question)) {
        CommField f;
        f.kind = CommField::Kind::Input;
        f.var = expect(Tok::Ident, "input binder").text;
        if (accept(Tok::Colon)) f.restriction = additive();
        fields.push_back(std::move(f));
      } else if (accept(Tok::Bang)) {
        CommField f;
        f.kind = CommField::Kind::Output;
        f.expr = additive();
        fields.push_back(std::move(f));
      } else {
        break;
      }
    }
    if (accept(Tok::Arrow)) {
      auto e = make(ExprKind::Prefix);
      e->line = head->line;
      e->head = std::move(head);
      e->fields = std::move(fields);
      e->kids.push_back(guard_or_prefix());
      return e;
    }
    if (!fields.empty()) {
      fail("communication fields ('?', '!') must be followed by '->'");
    }
    return head;
  }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (accept(Tok::KwOr)) {
      auto e = binary(ExprKind::BinOp, std::move(lhs), and_expr());
      e->binop = BinOpKind::Or;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = not_expr();
    while (accept(Tok::KwAnd)) {
      auto e = binary(ExprKind::BinOp, std::move(lhs), not_expr());
      e->binop = BinOpKind::And;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr not_expr() {
    if (at(Tok::KwNot)) {
      auto e = make(ExprKind::UnOp);
      take();
      e->unop = UnOpKind::Not;
      e->kids.push_back(not_expr());
      return e;
    }
    return comparison();
  }

  ExprPtr comparison() {
    ExprPtr lhs = additive();
    const auto op = [&](BinOpKind k) {
      take();
      auto e = binary(ExprKind::BinOp, std::move(lhs), additive());
      e->binop = k;
      lhs = std::move(e);
    };
    for (;;) {
      if (at(Tok::EqEq)) { op(BinOpKind::Eq); }
      else if (at(Tok::NotEq)) { op(BinOpKind::Ne); }
      else if (at(Tok::Less)) { op(BinOpKind::Lt); }
      else if (at(Tok::Greater)) { op(BinOpKind::Gt); }
      else if (at(Tok::LessEq)) { op(BinOpKind::Le); }
      else if (at(Tok::GreaterEq)) { op(BinOpKind::Ge); }
      else { return lhs; }
    }
  }

  ExprPtr additive() {
    ExprPtr lhs = multiplicative();
    for (;;) {
      if (accept(Tok::Plus)) {
        auto e = binary(ExprKind::BinOp, std::move(lhs), multiplicative());
        e->binop = BinOpKind::Add;
        lhs = std::move(e);
      } else if (accept(Tok::Minus)) {
        auto e = binary(ExprKind::BinOp, std::move(lhs), multiplicative());
        e->binop = BinOpKind::Sub;
        lhs = std::move(e);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr multiplicative() {
    ExprPtr lhs = unary();
    for (;;) {
      if (accept(Tok::Star)) {
        auto e = binary(ExprKind::BinOp, std::move(lhs), unary());
        e->binop = BinOpKind::Mul;
        lhs = std::move(e);
      } else if (accept(Tok::Slash)) {
        auto e = binary(ExprKind::BinOp, std::move(lhs), unary());
        e->binop = BinOpKind::Div;
        lhs = std::move(e);
      } else if (accept(Tok::Percent)) {
        auto e = binary(ExprKind::BinOp, std::move(lhs), unary());
        e->binop = BinOpKind::Mod;
        lhs = std::move(e);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr unary() {
    if (at(Tok::Minus)) {
      auto e = make(ExprKind::UnOp);
      take();
      e->unop = UnOpKind::Neg;
      e->kids.push_back(unary());
      return e;
    }
    return postfix();
  }

  ExprPtr postfix() { return postfix_impl(/*collect_dots=*/true); }
  ExprPtr postfix_no_dot() { return postfix_impl(/*collect_dots=*/false); }

  ExprPtr postfix_impl(bool collect_dots) {
    ExprPtr e = primary();
    for (;;) {
      if (collect_dots && at(Tok::Dot)) {
        take();
        e = binary(ExprKind::Dot, std::move(e), primary());
      } else if (at(Tok::LParen) && e->kind == ExprKind::Name) {
        take();
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::Call;
        call->line = e->line;
        call->column = e->column;
        call->name = e->name;
        if (!at(Tok::RParen)) {
          call->kids.push_back(expr());
          while (accept(Tok::Comma)) call->kids.push_back(expr());
        }
        expect(Tok::RParen, "call argument list");
        e = std::move(call);
      } else if (at(Tok::LRenameB)) {
        take();
        auto ren = std::make_unique<Expr>();
        ren->kind = ExprKind::Rename;
        ren->line = e->line;
        ren->column = e->column;
        ren->kids.push_back(std::move(e));
        do {
          RenameItem item;
          item.from = or_expr();
          expect(Tok::LArrow, "rename '<-'");
          item.to = or_expr();
          ren->renames.push_back(std::move(item));
        } while (accept(Tok::Comma));
        expect(Tok::RRenameB, "']]' of renaming");
        e = std::move(ren);
      } else {
        return e;
      }
    }
  }

  std::vector<Generator> generators() {
    std::vector<Generator> out;
    do {
      Generator g;
      g.var = expect(Tok::Ident, "generator variable").text;
      expect(Tok::Colon, "generator ':'");
      g.set = or_expr();
      out.push_back(std::move(g));
    } while (accept(Tok::Comma));
    return out;
  }

  ExprPtr replicated(ExprKind op, ExprPtr sync = nullptr) {
    auto e = make(ExprKind::Replicated);
    e->rep_op = op;
    e->gens = generators();
    expect(Tok::At, "'@' of replicated operator");
    e->kids.push_back(expr());
    if (sync) e->kids.push_back(std::move(sync));
    return e;
  }

  ExprPtr primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::Number: {
        auto e = make(ExprKind::Number);
        e->number = take().number;
        return e;
      }
      case Tok::KwTrue:
      case Tok::KwFalse: {
        auto e = make(ExprKind::Bool);
        e->boolean = take().kind == Tok::KwTrue;
        return e;
      }
      case Tok::KwStop: {
        auto e = make(ExprKind::Stop);
        take();
        return e;
      }
      case Tok::KwSkip: {
        auto e = make(ExprKind::Skip);
        take();
        return e;
      }
      case Tok::Ident: {
        auto e = make(ExprKind::Name);
        e->name = take().text;
        return e;
      }
      case Tok::LParen: {
        take();
        ExprPtr first = expr();
        if (accept(Tok::Comma)) {
          auto tup = make(ExprKind::Tuple);
          tup->kids.push_back(std::move(first));
          do {
            tup->kids.push_back(expr());
          } while (accept(Tok::Comma));
          expect(Tok::RParen, "tuple");
          return tup;
        }
        expect(Tok::RParen, "parenthesised expression");
        return first;
      }
      case Tok::LBrace: {
        take();
        auto set = make(ExprKind::SetLit);
        if (accept(Tok::RBrace)) return set;
        ExprPtr first = expr();
        if (accept(Tok::Pipe)) {
          // Set comprehension: { elem | x <- S, ..., conditions }.
          auto comp = make(ExprKind::SetComp);
          comp->kids.push_back(std::move(first));
          do {
            if (at(Tok::Ident) && at(Tok::LArrow, 1)) {
              Generator g;
              g.var = take().text;
              take();  // <-
              g.set = or_expr();
              comp->gens.push_back(std::move(g));
            } else {
              comp->kids.push_back(or_expr());  // filter condition
            }
          } while (accept(Tok::Comma));
          expect(Tok::RBrace, "set comprehension");
          if (comp->gens.empty()) {
            fail("set comprehension needs at least one 'x <- S' generator");
          }
          return comp;
        }
        if (accept(Tok::DotDot)) {
          auto range = make(ExprKind::SetRange);
          range->kids.push_back(std::move(first));
          range->kids.push_back(expr());
          expect(Tok::RBrace, "set range");
          return range;
        }
        set->kids.push_back(std::move(first));
        while (accept(Tok::Comma)) set->kids.push_back(expr());
        expect(Tok::RBrace, "set literal");
        return set;
      }
      case Tok::LBraceBar: {
        take();
        auto cs = make(ExprKind::ChanSet);
        cs->kids.push_back(expr());
        while (accept(Tok::Comma)) cs->kids.push_back(expr());
        expect(Tok::RBraceBar, "'|}' of channel set");
        return cs;
      }
      // Replicated operators in operand position.
      case Tok::ExtChoice:
        take();
        return replicated(ExprKind::ExtChoice);
      case Tok::IntChoice:
        take();
        return replicated(ExprKind::IntChoice);
      case Tok::Interleave:
        take();
        return replicated(ExprKind::Interleave);
      case Tok::LSync: {
        take();
        ExprPtr sync = expr();
        expect(Tok::RSync, "'|]' of replicated synchronised parallel");
        return replicated(ExprKind::SyncPar, std::move(sync));
      }
      default:
        fail("expected an expression, found " + to_string(t.kind));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Script parse_cspm(std::string_view source) {
  return Parser(source).script();
}

ExprPtr parse_cspm_expression(std::string_view source) {
  return Parser(source).single_expression();
}

}  // namespace ecucsp::cspm
