#include "cspm/eval.hpp"

#include <algorithm>

#include "cspm/parser.hpp"
#include "cspm/printer.hpp"

namespace ecucsp::cspm {

// --- CVal helpers ------------------------------------------------------------

CVal CVal::of_int(std::int64_t v) {
  CVal out;
  out.kind = Kind::Int;
  out.integer = v;
  return out;
}
CVal CVal::of_bool(bool v) {
  CVal out;
  out.kind = Kind::Bool;
  out.boolean = v;
  return out;
}
CVal CVal::of_data(Value v) {
  CVal out;
  out.kind = Kind::Data;
  out.data = std::move(v);
  return out;
}
CVal CVal::of_set(std::vector<Value> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  CVal out;
  out.kind = Kind::Set;
  out.set = std::make_shared<const std::vector<Value>>(std::move(items));
  return out;
}
CVal CVal::of_events(EventSet es) {
  CVal out;
  out.kind = Kind::Events;
  out.events = std::move(es);
  return out;
}
CVal CVal::of_process(ProcessRef p) {
  CVal out;
  out.kind = Kind::Process;
  out.process = p;
  return out;
}

std::string CVal::kind_name() const {
  switch (kind) {
    case Kind::Int: return "integer";
    case Kind::Bool: return "boolean";
    case Kind::Data: return "datum";
    case Kind::Set: return "set";
    case Kind::Events: return "event set";
    case Kind::Channel: return "channel";
    case Kind::Closure: return "function";
    case Kind::Process: return "process";
  }
  return "?";
}

// --- loading -------------------------------------------------------------------

void Evaluator::load_source(std::string_view source) {
  load(parse_cspm(source));
}

void Evaluator::load(Script script) {
  auto owned = std::make_unique<Script>(std::move(script));
  const Script& s = *owned;

  for (const DatatypeDeclAst& dt : s.datatypes) {
    std::vector<Value> members;
    for (const std::string& ctor : dt.constructors) {
      const Value v = Value::symbol(ctx_.sym(ctor));
      globals_[ctor] = CVal::of_data(v);
      members.push_back(v);
    }
    globals_[dt.name] = CVal::of_set(std::move(members));
  }

  for (const NametypeDeclAst& nt : s.nametypes) {
    const CVal v = eval(*nt.type, {});
    if (v.kind != CVal::Kind::Set) {
      throw EvalError("nametype '" + nt.name + "' must denote a set", nt.line, 1);
    }
    globals_[nt.name] = v;
  }

  for (const ChannelDeclAst& cd : s.channels) {
    std::vector<std::vector<Value>> domains;
    for (const ExprPtr& ty : cd.field_types) {
      domains.push_back(eval_set(*ty, {}));
    }
    for (const std::string& name : cd.names) {
      const ChannelId id = ctx_.channel(name, domains);
      CVal cv;
      cv.kind = CVal::Kind::Channel;
      cv.chan = id;
      globals_[name] = cv;
    }
  }

  for (const DefinitionAst& def : s.definitions) {
    defs_[def.name] = &def;
    // Register with the core context so Var(name, args) nodes resolve.
    const DefinitionAst* dp = &def;
    ctx_.define(def.name, [this, dp](Context&, std::span<const Value> args) {
      if (args.size() != dp->params.size()) {
        throw EvalError("process '" + dp->name + "' expects " +
                            std::to_string(dp->params.size()) + " arguments",
                        dp->line, 1);
      }
      Env env;
      DefKey key{dp->name, {args.begin(), args.end()}};
      for (std::size_t i = 0; i < args.size(); ++i) {
        env[dp->params[i]] = to_cval(args[i]);
      }
      const bool marked = in_progress_.insert(key).second;
      ProcessRef p = nullptr;
      try {
        p = eval_process(*dp->body, env);
      } catch (...) {
        if (marked) in_progress_.erase(key);
        throw;
      }
      if (marked) in_progress_.erase(key);
      return p;
    });
  }

  for (const AssertionAst& a : s.assertions) assertions_.push_back(&a);
  scripts_.push_back(std::move(owned));
}

// --- public entry points ----------------------------------------------------------

ProcessRef Evaluator::process(const std::string& name) {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    throw EvalError("no definition named '" + name + "'", 0, 0);
  }
  Expr where;  // synthetic location
  const CVal v = reference_definition(*it->second, {}, where);
  if (v.kind != CVal::Kind::Process) {
    throw EvalError("'" + name + "' is a " + v.kind_name() + ", not a process",
                    it->second->line, 1);
  }
  return v.process;
}

CVal Evaluator::evaluate_expression(const std::string& source) {
  const ExprPtr e = parse_cspm_expression(source);
  return eval(*e, {});
}

std::vector<AssertionResult> Evaluator::check_assertions(std::size_t max_states) {
  std::vector<AssertionResult> out;
  out.reserve(assertions_.size());
  for (std::size_t i = 0; i < assertions_.size(); ++i) {
    out.push_back(check_assertion(i, max_states));
  }
  return out;
}

AssertionResult Evaluator::check_assertion(std::size_t index,
                                           std::size_t max_states,
                                           CancelToken* cancel) {
  const AssertionAst* a = assertions_.at(index);
  AssertionResult r;
  r.kind = a->kind;
  r.line = a->line;
  const ProcessRef lhs = eval_process(*a->lhs, {});
  switch (a->kind) {
    case AssertionAst::Kind::RefinesT:
    case AssertionAst::Kind::RefinesF:
    case AssertionAst::Kind::RefinesFD: {
      const ProcessRef rhs = eval_process(*a->rhs, {});
      const Model m = a->kind == AssertionAst::Kind::RefinesT ? Model::Traces
                      : a->kind == AssertionAst::Kind::RefinesF
                          ? Model::Failures
                          : Model::FailuresDivergences;
      r.description = print_expr(*a->lhs) + " [" + ecucsp::to_string(m) +
                      "= " + print_expr(*a->rhs);
      r.result = check_refinement(ctx_, lhs, rhs, m, max_states, cancel);
      break;
    }
    case AssertionAst::Kind::DeadlockFree:
      r.description = print_expr(*a->lhs) + " :[deadlock free]";
      r.result = check_deadlock_free(ctx_, lhs, max_states, cancel);
      break;
    case AssertionAst::Kind::DivergenceFree:
      r.description = print_expr(*a->lhs) + " :[divergence free]";
      r.result = check_divergence_free(ctx_, lhs, max_states, cancel);
      break;
    case AssertionAst::Kind::Deterministic:
      r.description = print_expr(*a->lhs) + " :[deterministic]";
      r.result = check_deterministic(ctx_, lhs, max_states, cancel);
      break;
  }
  return r;
}

std::optional<AssertionTerms> Evaluator::assertion_terms(std::size_t index) {
  const AssertionAst* a = assertions_.at(index);
  switch (a->kind) {
    case AssertionAst::Kind::RefinesT:
    case AssertionAst::Kind::RefinesF:
    case AssertionAst::Kind::RefinesFD: {
      AssertionTerms t;
      t.model = a->kind == AssertionAst::Kind::RefinesT ? Model::Traces
                : a->kind == AssertionAst::Kind::RefinesF
                    ? Model::Failures
                    : Model::FailuresDivergences;
      t.spec = eval_process(*a->lhs, {});
      t.impl = eval_process(*a->rhs, {});
      return t;
    }
    default:
      return std::nullopt;
  }
}

// --- lookup & calls ------------------------------------------------------------------

CVal Evaluator::lookup(const std::string& name, const Env& env,
                       const Expr& where) {
  if (auto it = env.find(name); it != env.end()) return it->second;
  if (auto it = globals_.find(name); it != globals_.end()) return it->second;
  if (auto it = defs_.find(name); it != defs_.end()) {
    if (it->second->params.empty()) {
      return reference_definition(*it->second, {}, where);
    }
    // A parameterised definition used as a first-class function.
    CVal c;
    c.kind = CVal::Kind::Closure;
    c.closure_name = name;
    return c;
  }
  error(where, "unknown name '" + name + "'");
}

CVal Evaluator::reference_definition(const DefinitionAst& def,
                                     std::vector<CVal> args,
                                     const Expr& where) {
  if (args.size() != def.params.size()) {
    error(where, "'" + def.name + "' expects " +
                     std::to_string(def.params.size()) + " argument(s), got " +
                     std::to_string(args.size()));
  }
  // Data arguments allow memoisation and recursion via core Var nodes.
  const bool data_args = std::all_of(args.begin(), args.end(), [](const CVal& a) {
    return a.kind == CVal::Kind::Int || a.kind == CVal::Kind::Data;
  });
  if (data_args) {
    DefKey key{def.name, {}};
    for (const CVal& a : args) {
      key.args.push_back(a.kind == CVal::Kind::Int ? Value::integer(a.integer)
                                                   : a.data);
    }
    if (in_progress_.contains(key)) {
      // Recursive reference: produce a Var node and let the core context
      // unfold it lazily. This is what ties recursive CSPm definitions.
      return CVal::of_process(ctx_.var(def.name, key.args));
    }
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    // Each distinct in-flight instantiation deepens the eager unfolding by
    // one C++ stack frame; only a reference to an instantiation already in
    // progress is tied lazily. A definition recursing through an unbounded
    // argument (COUNT(n) = a -> COUNT(n+1)) would therefore overflow the
    // stack — fail with a diagnosable error well before that.
    constexpr std::size_t kMaxInstantiationDepth = 1000;
    if (in_progress_.size() >= kMaxInstantiationDepth) {
      error(where, "'" + def.name +
                       "' exceeds the maximum process-instantiation depth (" +
                       std::to_string(kMaxInstantiationDepth) +
                       "); recursion through an unbounded argument?");
    }
    Env env;
    for (std::size_t i = 0; i < args.size(); ++i) {
      env[def.params[i]] = args[i];
    }
    in_progress_.insert(key);
    CVal out;
    try {
      out = eval(*def.body, env);
    } catch (...) {
      in_progress_.erase(key);
      throw;
    }
    in_progress_.erase(key);
    memo_.emplace(std::move(key), out);
    return out;
  }
  // Non-data arguments (sets, processes, functions): evaluate directly.
  // Recursion through such arguments is not supported.
  Env env;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env[def.params[i]] = std::move(args[i]);
  }
  return eval(*def.body, env);
}

CVal Evaluator::call(const std::string& name, std::vector<CVal> args,
                     const Env& env, const Expr& where) {
  // Local/let closures shadow definitions and builtins.
  CVal head;
  bool have_head = false;
  if (auto it = env.find(name); it != env.end()) {
    head = it->second;
    have_head = true;
  } else if (auto it2 = globals_.find(name); it2 != globals_.end()) {
    head = it2->second;
    have_head = true;
  }
  if (have_head) {
    if (head.kind != CVal::Kind::Closure) {
      error(where, "'" + name + "' is a " + head.kind_name() +
                       " and cannot be applied");
    }
    if (!head.closure_body) {
      // Reference to a top-level parameterised definition.
      return reference_definition(*defs_.at(head.closure_name),
                                  std::move(args), where);
    }
    if (args.size() != head.closure_params.size()) {
      error(where, "function '" + name + "' expects " +
                       std::to_string(head.closure_params.size()) +
                       " argument(s)");
    }
    Env inner = head.closure_env ? *head.closure_env : Env{};
    for (std::size_t i = 0; i < args.size(); ++i) {
      inner[head.closure_params[i]] = std::move(args[i]);
    }
    return eval(*static_cast<const Expr*>(head.closure_body), inner);
  }

  if (auto it = defs_.find(name); it != defs_.end()) {
    return reference_definition(*it->second, std::move(args), where);
  }

  // Builtin set functions.
  const auto need = [&](std::size_t n) {
    if (args.size() != n) {
      error(where, "builtin '" + name + "' expects " + std::to_string(n) +
                       " argument(s)");
    }
  };
  const auto both_events = [&] {
    return args[0].kind == CVal::Kind::Events ||
           args[1].kind == CVal::Kind::Events ||
           args[0].kind == CVal::Kind::Channel ||
           args[1].kind == CVal::Kind::Channel;
  };
  if (name == "union") {
    need(2);
    if (both_events()) {
      return CVal::of_events(
          to_events(args[0], where).set_union(to_events(args[1], where)));
    }
    std::vector<Value> out = *args[0].set;
    out.insert(out.end(), args[1].set->begin(), args[1].set->end());
    return CVal::of_set(std::move(out));
  }
  if (name == "inter") {
    need(2);
    if (both_events()) {
      return CVal::of_events(to_events(args[0], where)
                                 .set_intersection(to_events(args[1], where)));
    }
    std::vector<Value> out;
    for (const Value& v : *args[0].set) {
      if (std::binary_search(args[1].set->begin(), args[1].set->end(), v)) {
        out.push_back(v);
      }
    }
    return CVal::of_set(std::move(out));
  }
  if (name == "diff") {
    need(2);
    if (both_events()) {
      return CVal::of_events(
          to_events(args[0], where).set_difference(to_events(args[1], where)));
    }
    std::vector<Value> out;
    for (const Value& v : *args[0].set) {
      if (!std::binary_search(args[1].set->begin(), args[1].set->end(), v)) {
        out.push_back(v);
      }
    }
    return CVal::of_set(std::move(out));
  }
  if (name == "card") {
    need(1);
    if (args[0].kind == CVal::Kind::Events) {
      return CVal::of_int(static_cast<std::int64_t>(args[0].events.size()));
    }
    if (args[0].kind == CVal::Kind::Set) {
      return CVal::of_int(static_cast<std::int64_t>(args[0].set->size()));
    }
    error(where, "card expects a set");
  }
  if (name == "empty") {
    need(1);
    if (args[0].kind == CVal::Kind::Events) {
      return CVal::of_bool(args[0].events.empty());
    }
    if (args[0].kind == CVal::Kind::Set) {
      return CVal::of_bool(args[0].set->empty());
    }
    error(where, "empty expects a set");
  }
  if (name == "member") {
    need(2);
    if (args[1].kind == CVal::Kind::Events) {
      return CVal::of_bool(
          args[1].events.contains(complete_event(args[0], where)));
    }
    if (args[1].kind == CVal::Kind::Set) {
      const Value v = to_data(args[0], where);
      return CVal::of_bool(
          std::binary_search(args[1].set->begin(), args[1].set->end(), v));
    }
    error(where, "member expects a set as second argument");
  }
  if (name == "Union") {
    need(1);
    if (args[0].kind != CVal::Kind::Set) error(where, "Union expects a set");
    error(where, "Union over sets-of-sets is not supported in this subset");
  }
  error(where, "unknown function '" + name + "'");
}

// --- conversions ----------------------------------------------------------------------

CVal Evaluator::to_cval(const Value& v) const {
  if (v.is_int()) return CVal::of_int(v.as_int());
  return CVal::of_data(v);
}

Value Evaluator::to_data(const CVal& v, const Expr& where) const {
  switch (v.kind) {
    case CVal::Kind::Int:
      return Value::integer(v.integer);
    case CVal::Kind::Data:
      return v.data;
    default:
      error(where, "expected a data value, found a " + v.kind_name());
  }
}

EventSet Evaluator::to_events(const CVal& v, const Expr& where) {
  switch (v.kind) {
    case CVal::Kind::Events:
      return v.events;
    case CVal::Kind::Channel: {
      // A (possibly partially applied) channel denotes all events that
      // extend the applied fields: the {| c.x |} production.
      const EventSet all = ctx_.events_of(v.chan);
      if (v.chan_fields.empty()) return all;
      std::vector<EventId> out;
      for (EventId e : all) {
        const auto& fields = ctx_.event_fields(e);
        if (fields.size() < v.chan_fields.size()) continue;
        if (std::equal(v.chan_fields.begin(), v.chan_fields.end(),
                       fields.begin())) {
          out.push_back(e);
        }
      }
      return EventSet(std::move(out));
    }
    default:
      error(where, "expected an event set, found a " + v.kind_name());
  }
}

EventId Evaluator::complete_event(const CVal& v, const Expr& where) {
  if (v.kind != CVal::Kind::Channel) {
    error(where, "expected an event, found a " + v.kind_name());
  }
  const ChannelDecl& decl = ctx_.channel_decl(v.chan);
  if (v.chan_fields.size() != decl.field_domains.size()) {
    error(where, "event on channel '" + ctx_.symbols().name(decl.name) +
                     "' is missing fields");
  }
  return ctx_.event(v.chan, v.chan_fields);
}

EventSet Evaluator::full_alphabet() {
  EventSet out;
  for (ChannelId c = 2; c < ctx_.channel_count(); ++c) {
    out = out.set_union(ctx_.events_of(c));
  }
  return out;
}

// --- typed evaluation wrappers ------------------------------------------------------------

ProcessRef Evaluator::eval_process(const Expr& e, const Env& env) {
  const CVal v = eval(e, env);
  if (v.kind != CVal::Kind::Process) {
    error(e, "expected a process, found a " + v.kind_name());
  }
  return v.process;
}

EventSet Evaluator::eval_event_set(const Expr& e, const Env& env) {
  return to_events(eval(e, env), e);
}

Value Evaluator::eval_data(const Expr& e, const Env& env) {
  return to_data(eval(e, env), e);
}

std::vector<Value> Evaluator::eval_set(const Expr& e, const Env& env) {
  const CVal v = eval(e, env);
  if (v.kind != CVal::Kind::Set) {
    error(e, "expected a set of data values, found a " + v.kind_name());
  }
  return *v.set;
}

bool Evaluator::eval_bool(const Expr& e, const Env& env) {
  const CVal v = eval(e, env);
  if (v.kind != CVal::Kind::Bool) {
    error(e, "expected a boolean, found a " + v.kind_name());
  }
  return v.boolean;
}

// --- prefix expansion -----------------------------------------------------------------------

ProcessRef Evaluator::expand_prefix(const Expr& prefix, const CVal& head,
                                    std::size_t next_field,
                                    std::vector<Value> fields, const Env& env) {
  const ChannelDecl& decl = ctx_.channel_decl(head.chan);
  if (next_field == prefix.fields.size()) {
    if (fields.size() != decl.field_domains.size()) {
      error(prefix, "communication on channel '" +
                        ctx_.symbols().name(decl.name) +
                        "' leaves fields unfilled");
    }
    const EventId e = ctx_.event(head.chan, std::move(fields));
    return ctx_.prefix(e, eval_process(*prefix.kids[0], env));
  }
  const CommField& f = prefix.fields[next_field];
  if (f.kind == CommField::Kind::Output) {
    fields.push_back(eval_data(*f.expr, env));
    return expand_prefix(prefix, head, next_field + 1, std::move(fields), env);
  }
  // Input '?x' / '?x:S': external choice over the (restricted) field domain.
  const std::size_t idx = fields.size();
  if (idx >= decl.field_domains.size()) {
    error(prefix, "too many communication fields for channel '" +
                      ctx_.symbols().name(decl.name) + "'");
  }
  std::vector<Value> domain = decl.field_domains[idx];
  if (f.restriction) {
    const std::vector<Value> allowed = eval_set(*f.restriction, env);
    std::erase_if(domain, [&](const Value& v) {
      return !std::binary_search(allowed.begin(), allowed.end(), v);
    });
  }
  std::vector<ProcessRef> branches;
  branches.reserve(domain.size());
  for (const Value& v : domain) {
    Env extended = env;
    extended[f.var] = to_cval(v);
    std::vector<Value> with = fields;
    with.push_back(v);
    branches.push_back(
        expand_prefix(prefix, head, next_field + 1, std::move(with), extended));
  }
  return ctx_.ext_choice(branches);
}

// --- the main evaluator -------------------------------------------------------------------------

CVal Evaluator::eval(const Expr& e, const Env& env) {
  switch (e.kind) {
    case ExprKind::Number:
      return CVal::of_int(e.number);
    case ExprKind::Bool:
      return CVal::of_bool(e.boolean);
    case ExprKind::Name:
      return lookup(e.name, env, e);

    case ExprKind::Call: {
      std::vector<CVal> args;
      args.reserve(e.kids.size());
      for (const ExprPtr& k : e.kids) args.push_back(eval(*k, env));
      return call(e.name, std::move(args), env, e);
    }

    case ExprKind::Dot: {
      const CVal l = eval(*e.kids[0], env);
      if (l.kind != CVal::Kind::Channel) {
        error(e, "'.' application requires a channel on the left, found a " +
                     l.kind_name());
      }
      CVal out = l;
      out.chan_fields.push_back(eval_data(*e.kids[1], env));
      const ChannelDecl& decl = ctx_.channel_decl(out.chan);
      if (out.chan_fields.size() > decl.field_domains.size()) {
        error(e, "too many fields for channel '" +
                     ctx_.symbols().name(decl.name) + "'");
      }
      return out;
    }

    case ExprKind::Tuple: {
      std::vector<Value> items;
      for (const ExprPtr& k : e.kids) items.push_back(eval_data(*k, env));
      return CVal::of_data(Value::tuple(std::move(items)));
    }

    case ExprKind::SetLit: {
      if (e.kids.empty()) return CVal::of_set({});
      // Peek the first element to decide between data sets and event sets.
      const CVal first = eval(*e.kids[0], env);
      if (first.kind == CVal::Kind::Channel ||
          first.kind == CVal::Kind::Events) {
        EventSet out = to_events(first, e);
        for (std::size_t i = 1; i < e.kids.size(); ++i) {
          out = out.set_union(to_events(eval(*e.kids[i], env), e));
        }
        return CVal::of_events(std::move(out));
      }
      std::vector<Value> items{to_data(first, e)};
      for (std::size_t i = 1; i < e.kids.size(); ++i) {
        items.push_back(eval_data(*e.kids[i], env));
      }
      return CVal::of_set(std::move(items));
    }

    case ExprKind::SetComp: {
      std::vector<std::vector<Value>> domains;
      for (const Generator& g : e.gens) {
        domains.push_back(eval_set(*g.set, env));
      }
      std::vector<Value> out;
      std::vector<std::size_t> idx(domains.size(), 0);
      bool done = std::any_of(domains.begin(), domains.end(),
                              [](const auto& d) { return d.empty(); });
      while (!done) {
        Env inner = env;
        for (std::size_t i = 0; i < domains.size(); ++i) {
          inner[e.gens[i].var] = to_cval(domains[i][idx[i]]);
        }
        bool keep = true;
        for (std::size_t c = 1; c < e.kids.size(); ++c) {
          if (!eval_bool(*e.kids[c], inner)) {
            keep = false;
            break;
          }
        }
        if (keep) out.push_back(eval_data(*e.kids[0], inner));
        std::size_t i = domains.size();
        done = true;
        while (i > 0) {
          --i;
          if (++idx[i] < domains[i].size()) {
            done = false;
            break;
          }
          idx[i] = 0;
        }
      }
      return CVal::of_set(std::move(out));
    }

    case ExprKind::SetRange: {
      const CVal lo = eval(*e.kids[0], env);
      const CVal hi = eval(*e.kids[1], env);
      if (lo.kind != CVal::Kind::Int || hi.kind != CVal::Kind::Int) {
        error(e, "set range bounds must be integers");
      }
      std::vector<Value> items;
      for (std::int64_t v = lo.integer; v <= hi.integer; ++v) {
        items.push_back(Value::integer(v));
      }
      return CVal::of_set(std::move(items));
    }

    case ExprKind::ChanSet: {
      EventSet out;
      for (const ExprPtr& k : e.kids) {
        out = out.set_union(to_events(eval(*k, env), e));
      }
      return CVal::of_events(std::move(out));
    }

    case ExprKind::BinOp: {
      if (e.binop == BinOpKind::And || e.binop == BinOpKind::Or) {
        const bool l = eval_bool(*e.kids[0], env);
        if (e.binop == BinOpKind::And && !l) return CVal::of_bool(false);
        if (e.binop == BinOpKind::Or && l) return CVal::of_bool(true);
        return CVal::of_bool(eval_bool(*e.kids[1], env));
      }
      if (e.binop == BinOpKind::Eq || e.binop == BinOpKind::Ne) {
        const CVal l = eval(*e.kids[0], env);
        const CVal r = eval(*e.kids[1], env);
        bool eq = false;
        if (l.kind == CVal::Kind::Bool && r.kind == CVal::Kind::Bool) {
          eq = l.boolean == r.boolean;
        } else {
          eq = to_data(l, e) == to_data(r, e);
        }
        return CVal::of_bool(e.binop == BinOpKind::Eq ? eq : !eq);
      }
      const CVal l = eval(*e.kids[0], env);
      const CVal r = eval(*e.kids[1], env);
      if (l.kind != CVal::Kind::Int || r.kind != CVal::Kind::Int) {
        error(e, "arithmetic/comparison requires integers");
      }
      const std::int64_t a = l.integer;
      const std::int64_t b = r.integer;
      switch (e.binop) {
        case BinOpKind::Add: return CVal::of_int(a + b);
        case BinOpKind::Sub: return CVal::of_int(a - b);
        case BinOpKind::Mul: return CVal::of_int(a * b);
        case BinOpKind::Div:
          if (b == 0) error(e, "division by zero");
          return CVal::of_int(a / b);
        case BinOpKind::Mod:
          if (b == 0) error(e, "modulo by zero");
          return CVal::of_int(((a % b) + b) % b);
        case BinOpKind::Lt: return CVal::of_bool(a < b);
        case BinOpKind::Gt: return CVal::of_bool(a > b);
        case BinOpKind::Le: return CVal::of_bool(a <= b);
        case BinOpKind::Ge: return CVal::of_bool(a >= b);
        default:
          error(e, "unhandled binary operator");
      }
    }

    case ExprKind::UnOp: {
      const CVal v = eval(*e.kids[0], env);
      if (e.unop == UnOpKind::Neg) {
        if (v.kind != CVal::Kind::Int) error(e, "'-' requires an integer");
        return CVal::of_int(-v.integer);
      }
      if (v.kind != CVal::Kind::Bool) error(e, "'not' requires a boolean");
      return CVal::of_bool(!v.boolean);
    }

    case ExprKind::If:
      return eval_bool(*e.kids[0], env) ? eval(*e.kids[1], env)
                                        : eval(*e.kids[2], env);

    case ExprKind::Let: {
      Env inner = env;
      for (const LetBinding& b : e.bindings) {
        if (b.params.empty()) {
          inner[b.name] = eval(*b.body, inner);
        } else {
          CVal c;
          c.kind = CVal::Kind::Closure;
          c.closure_body = b.body.get();
          c.closure_params = b.params;
          c.closure_env = std::make_shared<const Env>(inner);
          c.closure_name = b.name;
          inner[b.name] = c;
        }
      }
      return eval(*e.kids[0], inner);
    }

    case ExprKind::Stop:
      return CVal::of_process(ctx_.stop());
    case ExprKind::Skip:
      return CVal::of_process(ctx_.skip());

    case ExprKind::Prefix: {
      const CVal head = eval(*e.head, env);
      if (head.kind != CVal::Kind::Channel) {
        error(e, "prefix head must be a channel event, found a " +
                     head.kind_name());
      }
      return CVal::of_process(
          expand_prefix(e, head, 0, head.chan_fields, env));
    }

    case ExprKind::Guard:
      return CVal::of_process(eval_bool(*e.kids[0], env)
                                  ? eval_process(*e.kids[1], env)
                                  : ctx_.stop());

    case ExprKind::ExtChoice:
      return CVal::of_process(ctx_.ext_choice(eval_process(*e.kids[0], env),
                                              eval_process(*e.kids[1], env)));
    case ExprKind::IntChoice:
      return CVal::of_process(ctx_.int_choice(eval_process(*e.kids[0], env),
                                              eval_process(*e.kids[1], env)));
    case ExprKind::Seq:
      return CVal::of_process(ctx_.seq(eval_process(*e.kids[0], env),
                                       eval_process(*e.kids[1], env)));
    case ExprKind::Interleave:
      return CVal::of_process(ctx_.interleave(eval_process(*e.kids[0], env),
                                              eval_process(*e.kids[1], env)));

    case ExprKind::SyncPar: {
      const EventSet sync = eval_event_set(*e.kids[2], env);
      return CVal::of_process(ctx_.par(eval_process(*e.kids[0], env), sync,
                                       eval_process(*e.kids[1], env)));
    }

    case ExprKind::AlphaPar: {
      // P [A||B] Q: P restricted to A, Q to B, synchronised on A inter B.
      // block(P, X) = P [|X|] SKIP forbids X but preserves termination.
      const EventSet a = eval_event_set(*e.kids[2], env);
      const EventSet b = eval_event_set(*e.kids[3], env);
      const EventSet sigma = full_alphabet();
      const ProcessRef p = ctx_.par(eval_process(*e.kids[0], env),
                                    sigma.set_difference(a), ctx_.skip());
      const ProcessRef q = ctx_.par(eval_process(*e.kids[1], env),
                                    sigma.set_difference(b), ctx_.skip());
      return CVal::of_process(ctx_.par(p, a.set_intersection(b), q));
    }

    case ExprKind::InterruptE:
      return CVal::of_process(ctx_.interrupt(eval_process(*e.kids[0], env),
                                             eval_process(*e.kids[1], env)));
    case ExprKind::SlidingE:
      return CVal::of_process(ctx_.sliding(eval_process(*e.kids[0], env),
                                           eval_process(*e.kids[1], env)));

    case ExprKind::Hide:
      return CVal::of_process(ctx_.hide(eval_process(*e.kids[0], env),
                                        eval_event_set(*e.kids[1], env)));

    case ExprKind::Rename: {
      std::vector<RenamePair> pairs;
      for (const RenameItem& item : e.renames) {
        const CVal from = eval(*item.from, env);
        const CVal to = eval(*item.to, env);
        if (from.kind != CVal::Kind::Channel || to.kind != CVal::Kind::Channel) {
          error(e, "renaming items must be events or channels");
        }
        const ChannelDecl& fd = ctx_.channel_decl(from.chan);
        const ChannelDecl& td = ctx_.channel_decl(to.chan);
        const std::size_t f_missing =
            fd.field_domains.size() - from.chan_fields.size();
        const std::size_t t_missing =
            td.field_domains.size() - to.chan_fields.size();
        if (f_missing != t_missing) {
          error(e, "renaming endpoints have different remaining arity");
        }
        if (f_missing == 0) {
          pairs.push_back({ctx_.event(from.chan, from.chan_fields),
                           ctx_.event(to.chan, to.chan_fields)});
          continue;
        }
        // Whole-channel (or partial) renaming: map completions pointwise.
        for (EventId fe : to_events(from, e)) {
          const auto& fields = ctx_.event_fields(fe);
          std::vector<Value> completion(fields.begin() + from.chan_fields.size(),
                                        fields.end());
          std::vector<Value> target_fields = to.chan_fields;
          target_fields.insert(target_fields.end(), completion.begin(),
                               completion.end());
          pairs.push_back({fe, ctx_.event(to.chan, target_fields)});
        }
      }
      return CVal::of_process(
          ctx_.rename(eval_process(*e.kids[0], env), std::move(pairs)));
    }

    case ExprKind::Replicated: {
      // Enumerate all generator assignments in lexicographic order.
      std::vector<std::vector<Value>> domains;
      for (const Generator& g : e.gens) {
        domains.push_back(eval_set(*g.set, env));
      }
      std::vector<ProcessRef> bodies;
      std::vector<std::size_t> idx(domains.size(), 0);
      bool done = domains.empty() ||
                  std::any_of(domains.begin(), domains.end(),
                              [](const auto& d) { return d.empty(); });
      if (domains.empty()) done = true;
      while (!done) {
        Env inner = env;
        for (std::size_t i = 0; i < domains.size(); ++i) {
          inner[e.gens[i].var] = to_cval(domains[i][idx[i]]);
        }
        bodies.push_back(eval_process(*e.kids[0], inner));
        std::size_t i = domains.size();
        done = true;
        while (i > 0) {
          --i;
          if (++idx[i] < domains[i].size()) {
            done = false;
            break;
          }
          idx[i] = 0;
        }
      }
      switch (e.rep_op) {
        case ExprKind::ExtChoice:
          return CVal::of_process(ctx_.ext_choice(bodies));
        case ExprKind::IntChoice:
          if (bodies.empty()) error(e, "empty replicated internal choice");
          return CVal::of_process(ctx_.int_choice(bodies));
        case ExprKind::Interleave: {
          ProcessRef out = ctx_.skip();
          for (auto it = bodies.rbegin(); it != bodies.rend(); ++it) {
            out = it == bodies.rbegin() ? *it : ctx_.interleave(*it, out);
          }
          return CVal::of_process(bodies.empty() ? ctx_.skip() : out);
        }
        case ExprKind::SyncPar: {
          const EventSet sync = eval_event_set(*e.kids[1], env);
          if (bodies.empty()) return CVal::of_process(ctx_.skip());
          ProcessRef out = bodies.back();
          for (std::size_t i = bodies.size() - 1; i > 0; --i) {
            out = ctx_.par(bodies[i - 1], sync, out);
          }
          return CVal::of_process(out);
        }
        default:
          error(e, "unsupported replicated operator");
      }
    }
  }
  error(e, "unhandled expression kind");
}

}  // namespace ecucsp::cspm
