// Pretty-printer: AST back to CSPm concrete syntax.
//
// Output is conservative with parentheses so that print -> parse -> print
// is a fixpoint; round-trip tests rely on this.
#pragma once

#include <string>

#include "cspm/ast.hpp"

namespace ecucsp::cspm {

std::string print_expr(const Expr& e);
std::string print_script(const Script& s);

}  // namespace ecucsp::cspm
