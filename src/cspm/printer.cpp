#include "cspm/printer.hpp"

namespace ecucsp::cspm {

namespace {

std::string binop_text(BinOpKind k) {
  switch (k) {
    case BinOpKind::Add: return "+";
    case BinOpKind::Sub: return "-";
    case BinOpKind::Mul: return "*";
    case BinOpKind::Div: return "/";
    case BinOpKind::Mod: return "%";
    case BinOpKind::Eq: return "==";
    case BinOpKind::Ne: return "!=";
    case BinOpKind::Lt: return "<";
    case BinOpKind::Gt: return ">";
    case BinOpKind::Le: return "<=";
    case BinOpKind::Ge: return ">=";
    case BinOpKind::And: return "and";
    case BinOpKind::Or: return "or";
  }
  return "?";
}

/// Is this node atomic enough to print without enclosing parentheses?
bool atomic(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number:
    case ExprKind::Bool:
    case ExprKind::Name:
    case ExprKind::Call:
    case ExprKind::Tuple:
    case ExprKind::SetLit:
    case ExprKind::SetRange:
    case ExprKind::ChanSet:
    case ExprKind::Stop:
    case ExprKind::Skip:
    case ExprKind::Dot:
      return true;
    default:
      return false;
  }
}

std::string wrap(const Expr& e) {
  const std::string s = print_expr(e);
  return atomic(e) ? s : "(" + s + ")";
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number:
      return std::to_string(e.number);
    case ExprKind::Bool:
      return e.boolean ? "true" : "false";
    case ExprKind::Name:
      return e.name;
    case ExprKind::Call: {
      std::string out = e.name + "(";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*e.kids[i]);
      }
      return out + ")";
    }
    case ExprKind::Dot:
      return wrap(*e.kids[0]) + "." + wrap(*e.kids[1]);
    case ExprKind::Tuple: {
      std::string out = "(";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*e.kids[i]);
      }
      return out + ")";
    }
    case ExprKind::SetLit: {
      std::string out = "{";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*e.kids[i]);
      }
      return out + "}";
    }
    case ExprKind::SetComp: {
      std::string out = "{" + print_expr(*e.kids[0]) + " | ";
      bool first = true;
      for (const Generator& g : e.gens) {
        if (!first) out += ", ";
        first = false;
        out += g.var + " <- " + print_expr(*g.set);
      }
      for (std::size_t c = 1; c < e.kids.size(); ++c) {
        out += ", " + print_expr(*e.kids[c]);
      }
      return out + "}";
    }
    case ExprKind::SetRange:
      return "{" + print_expr(*e.kids[0]) + ".." + print_expr(*e.kids[1]) + "}";
    case ExprKind::ChanSet: {
      std::string out = "{|";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*e.kids[i]);
      }
      return out + "|}";
    }
    case ExprKind::BinOp:
      return wrap(*e.kids[0]) + " " + binop_text(e.binop) + " " +
             wrap(*e.kids[1]);
    case ExprKind::UnOp:
      return (e.unop == UnOpKind::Neg ? "-" : "not ") + wrap(*e.kids[0]);
    case ExprKind::If:
      return "if " + print_expr(*e.kids[0]) + " then " +
             print_expr(*e.kids[1]) + " else " + print_expr(*e.kids[2]);
    case ExprKind::Let: {
      std::string out = "let ";
      for (const LetBinding& b : e.bindings) {
        out += b.name;
        if (!b.params.empty()) {
          out += "(";
          for (std::size_t i = 0; i < b.params.size(); ++i) {
            if (i) out += ", ";
            out += b.params[i];
          }
          out += ")";
        }
        out += " = " + print_expr(*b.body) + " ";
      }
      return out + "within " + print_expr(*e.kids[0]);
    }
    case ExprKind::Stop:
      return "STOP";
    case ExprKind::Skip:
      return "SKIP";
    case ExprKind::Prefix: {
      std::string out = wrap(*e.head);
      for (const CommField& f : e.fields) {
        if (f.kind == CommField::Kind::Input) {
          out += "?" + f.var;
          if (f.restriction) out += ":" + wrap(*f.restriction);
        } else {
          out += "!" + wrap(*f.expr);
        }
      }
      return out + " -> " + wrap(*e.kids[0]);
    }
    case ExprKind::Guard:
      return wrap(*e.kids[0]) + " & " + wrap(*e.kids[1]);
    case ExprKind::ExtChoice:
      return wrap(*e.kids[0]) + " [] " + wrap(*e.kids[1]);
    case ExprKind::IntChoice:
      return wrap(*e.kids[0]) + " |~| " + wrap(*e.kids[1]);
    case ExprKind::Seq:
      return wrap(*e.kids[0]) + " ; " + wrap(*e.kids[1]);
    case ExprKind::Interleave:
      return wrap(*e.kids[0]) + " ||| " + wrap(*e.kids[1]);
    case ExprKind::SyncPar:
      return wrap(*e.kids[0]) + " [| " + print_expr(*e.kids[2]) + " |] " +
             wrap(*e.kids[1]);
    case ExprKind::AlphaPar:
      return wrap(*e.kids[0]) + " [ " + print_expr(*e.kids[2]) + " || " +
             print_expr(*e.kids[3]) + " ] " + wrap(*e.kids[1]);
    case ExprKind::InterruptE:
      return wrap(*e.kids[0]) + " /\\ " + wrap(*e.kids[1]);
    case ExprKind::SlidingE:
      return wrap(*e.kids[0]) + " [> " + wrap(*e.kids[1]);
    case ExprKind::Hide:
      return wrap(*e.kids[0]) + " \\ " + wrap(*e.kids[1]);
    case ExprKind::Rename: {
      std::string out = wrap(*e.kids[0]) + " [[";
      for (std::size_t i = 0; i < e.renames.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*e.renames[i].from) + " <- " +
               print_expr(*e.renames[i].to);
      }
      return out + "]]";
    }
    case ExprKind::Replicated: {
      std::string op;
      switch (e.rep_op) {
        case ExprKind::ExtChoice: op = "[]"; break;
        case ExprKind::IntChoice: op = "|~|"; break;
        case ExprKind::Interleave: op = "|||"; break;
        case ExprKind::SyncPar:
          op = "[| " + print_expr(*e.kids[1]) + " |]";
          break;
        default: op = "?"; break;
      }
      std::string out = op + " ";
      for (std::size_t i = 0; i < e.gens.size(); ++i) {
        if (i) out += ", ";
        out += e.gens[i].var + ":" + print_expr(*e.gens[i].set);
      }
      return out + " @ " + wrap(*e.kids[0]);
    }
  }
  return "?";
}

std::string print_script(const Script& s) {
  std::string out;
  for (const DatatypeDeclAst& dt : s.datatypes) {
    out += "datatype " + dt.name + " = ";
    for (std::size_t i = 0; i < dt.constructors.size(); ++i) {
      if (i) out += " | ";
      out += dt.constructors[i];
    }
    out += "\n";
  }
  for (const NametypeDeclAst& nt : s.nametypes) {
    out += "nametype " + nt.name + " = " + print_expr(*nt.type) + "\n";
  }
  for (const ChannelDeclAst& cd : s.channels) {
    out += "channel ";
    for (std::size_t i = 0; i < cd.names.size(); ++i) {
      if (i) out += ", ";
      out += cd.names[i];
    }
    if (!cd.field_types.empty()) {
      out += " : ";
      for (std::size_t i = 0; i < cd.field_types.size(); ++i) {
        if (i) out += ".";
        out += print_expr(*cd.field_types[i]);
      }
    }
    out += "\n";
  }
  for (const DefinitionAst& d : s.definitions) {
    out += d.name;
    if (!d.params.empty()) {
      out += "(";
      for (std::size_t i = 0; i < d.params.size(); ++i) {
        if (i) out += ", ";
        out += d.params[i];
      }
      out += ")";
    }
    out += " = " + print_expr(*d.body) + "\n";
  }
  for (const AssertionAst& a : s.assertions) {
    switch (a.kind) {
      case AssertionAst::Kind::RefinesT:
        out += "assert " + print_expr(*a.lhs) + " [T= " + print_expr(*a.rhs);
        break;
      case AssertionAst::Kind::RefinesF:
        out += "assert " + print_expr(*a.lhs) + " [F= " + print_expr(*a.rhs);
        break;
      case AssertionAst::Kind::RefinesFD:
        out += "assert " + print_expr(*a.lhs) + " [FD= " + print_expr(*a.rhs);
        break;
      case AssertionAst::Kind::DeadlockFree:
        out += "assert " + print_expr(*a.lhs) + " :[deadlock free]";
        break;
      case AssertionAst::Kind::DivergenceFree:
        out += "assert " + print_expr(*a.lhs) + " :[divergence free]";
        break;
      case AssertionAst::Kind::Deterministic:
        out += "assert " + print_expr(*a.lhs) + " :[deterministic]";
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace ecucsp::cspm
