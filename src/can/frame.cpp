#include "can/frame.hpp"

#include <cstdio>

namespace ecucsp::can {

std::string CanFrame::to_string() const {
  char head[32];
  std::snprintf(head, sizeof head, "0x%X%s [%u]", id, extended ? "x" : "",
                static_cast<unsigned>(dlc));
  std::string out = head;
  for (std::uint8_t i = 0; i < dlc && i < 8; ++i) {
    char b[8];
    std::snprintf(b, sizeof b, " %02X", data[i]);
    out += b;
  }
  return out;
}

}  // namespace ecucsp::can
