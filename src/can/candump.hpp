// SocketCAN candump log records.
//
// A fleet's logged evidence overwhelmingly arrives as `candump -L` text —
// one frame per line, timestamp in parentheses, interface name, then the
// id#data token:
//
//   (1736455225.123456) can0 123#DEADBEEF
//   (1736455225.124001) can1 18FF10F3#0102030405060708
//
// This is the per-line codec only: parse one record, format one record.
// File-level concerns (mmap ingestion, tolerant multi-line scanning with
// diagnostics, multi-channel merge) live in src/replay/log.hpp, which is
// built on top of these primitives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "can/frame.hpp"

namespace ecucsp::can {

struct CandumpRecord {
  std::uint64_t timestamp_us = 0;  // seconds.fraction rendered to microseconds
  std::string channel;             // interface name ("can0")
  CanFrame frame;                  // timestamp_us is mirrored into the frame
};

/// Parse one candump log line. Returns nullopt on malformed input and, when
/// `error` is non-null, stores a one-line description of what is wrong —
/// the caller records it as a diagnostic instead of aborting the ingest.
/// CAN FD ('##') and remote ('#R') records are recognised but rejected:
/// the classic-CAN frame model cannot represent them faithfully, and a
/// silent down-conversion would corrupt the evidence.
std::optional<CandumpRecord> parse_candump_line(std::string_view line,
                                                std::string* error = nullptr);

/// Render one frame as a candump log line (no trailing newline). Standard
/// ids print as 3 hex digits, extended ids as 8 — the same convention
/// candump itself uses, so written logs round-trip through external tools.
std::string format_candump_line(std::uint64_t timestamp_us,
                                std::string_view channel,
                                const CanFrame& frame);

}  // namespace ecucsp::can
