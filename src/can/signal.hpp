// Bit-level CAN signal encoding and decoding.
//
// Implements both byte orders used by CANdb:
//   Intel (little-endian, '@1' in DBC): start bit is the LSB, bits grow
//     upward through the payload.
//   Motorola (big-endian, '@0' in DBC): start bit is the MSB within its
//     byte; bits grow downward within a byte and onward to the next byte.
// Physical values are raw * factor + offset, as in CANdb.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ecucsp::can {

enum class ByteOrder : std::uint8_t { Intel, Motorola };

struct SignalSpec {
  std::string name;
  std::uint16_t start_bit = 0;  // DBC convention for the chosen byte order
  std::uint16_t length = 1;     // 1..64 bits
  ByteOrder byte_order = ByteOrder::Intel;
  bool is_signed = false;
  double factor = 1.0;
  double offset = 0.0;
  double minimum = 0.0;
  double maximum = 0.0;
  std::string unit;
};

/// Extract the raw (unscaled) value of a signal from a payload.
std::uint64_t decode_raw(const std::array<std::uint8_t, 8>& data,
                         const SignalSpec& spec);

/// Insert a raw value into the payload (bits outside the signal untouched).
void encode_raw(std::array<std::uint8_t, 8>& data, const SignalSpec& spec,
                std::uint64_t raw);

/// Scaled (physical) accessors: raw * factor + offset, sign-extended when
/// the signal is signed.
double decode_physical(const std::array<std::uint8_t, 8>& data,
                       const SignalSpec& spec);
void encode_physical(std::array<std::uint8_t, 8>& data, const SignalSpec& spec,
                     double physical);

}  // namespace ecucsp::can
