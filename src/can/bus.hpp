// A simulated CAN bus with identifier-based arbitration.
//
// Transmissions requested within the same arbitration window compete; the
// lowest identifier wins and the losers are re-queued for the next window
// (as on a real bus, where losing nodes retry automatically). Every frame
// actually transmitted is recorded in the trace — the substitute for the
// CANoe measurement log the paper's Section VI uses.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "can/frame.hpp"

namespace ecucsp::can {

/// A listener receives every frame transmitted on the bus, including its
/// own (CAN is a broadcast medium; self-reception is filtered by callers
/// that care, mirroring CANoe's behaviour of not re-invoking the sender).
using BusListener = std::function<void(const CanFrame&, int sender)>;

class CanBus {
 public:
  /// window_us: arbitration window length. All frames queued inside one
  /// window compete; one frame is delivered per window.
  explicit CanBus(std::uint64_t window_us = 100) : window_us_(window_us) {}

  int add_listener(BusListener cb);

  /// Queue a frame for transmission by `sender` (listener id) at the
  /// current time. Delivery order respects arbitration priority.
  void transmit(const CanFrame& frame, int sender);

  /// Advance the bus: deliver the highest-priority pending frame, stamping
  /// it with `now_us`. Returns true if a frame was delivered.
  bool deliver_one(std::uint64_t now_us);

  bool idle() const { return pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t window_us() const { return window_us_; }

  const std::vector<CanFrame>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

 private:
  struct Pending {
    CanFrame frame;
    int sender;
    std::uint64_t seq;  // FIFO tiebreak for identical ids from one node
  };

  std::uint64_t window_us_;
  std::uint64_t seq_ = 0;
  std::vector<Pending> pending_;
  std::vector<BusListener> listeners_;
  std::vector<CanFrame> trace_;
};

}  // namespace ecucsp::can
