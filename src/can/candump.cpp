#include "can/candump.hpp"

#include <cctype>
#include <cstdio>

namespace ecucsp::can {

namespace {

bool fail(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return false;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_hex(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (char c : s) {
    const int d = hex_digit(c);
    if (d < 0) return false;
    out = (out << 4) | static_cast<std::uint64_t>(d);
  }
  return true;
}

/// "(1736455225.123456)" -> microseconds. The fraction is optional and may
/// carry fewer than six digits (older loggers write milliseconds).
bool parse_timestamp(std::string_view s, std::uint64_t& out,
                     std::string* error) {
  if (s.size() < 2 || s.front() != '(' || s.back() != ')') {
    return fail(error, "malformed timestamp (expected '(seconds.frac)')");
  }
  s = s.substr(1, s.size() - 2);
  std::uint64_t secs = 0;
  std::size_t i = 0;
  if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
    return fail(error, "malformed timestamp (no digits)");
  }
  for (; i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])); ++i) {
    secs = secs * 10 + static_cast<std::uint64_t>(s[i] - '0');
  }
  std::uint64_t micros = 0;
  if (i < s.size()) {
    if (s[i] != '.') return fail(error, "malformed timestamp fraction");
    ++i;
    std::size_t digits = 0;
    for (; i < s.size(); ++i, ++digits) {
      if (!std::isdigit(static_cast<unsigned char>(s[i])) || digits >= 6) {
        return fail(error, "malformed timestamp fraction");
      }
      micros = micros * 10 + static_cast<std::uint64_t>(s[i] - '0');
    }
    for (; digits < 6; ++digits) micros *= 10;
  }
  out = secs * 1'000'000 + micros;
  return true;
}

}  // namespace

std::optional<CandumpRecord> parse_candump_line(std::string_view line,
                                                std::string* error) {
  const std::string_view text = trim(line);

  // Split into exactly three whitespace-separated tokens:
  // (timestamp) interface id#data.
  std::string_view tok[3];
  std::size_t pos = 0;
  for (int t = 0; t < 3; ++t) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != ' ' && text[pos] != '\t') ++pos;
    tok[t] = text.substr(start, pos - start);
    if (tok[t].empty()) {
      fail(error, "truncated record (expected '(timestamp) iface id#data')");
      return std::nullopt;
    }
  }
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos != text.size()) {
    fail(error, "unexpected trailing content after the frame token");
    return std::nullopt;
  }

  CandumpRecord rec;
  if (!parse_timestamp(tok[0], rec.timestamp_us, error)) return std::nullopt;
  rec.channel = std::string(tok[1]);

  const std::string_view frame_tok = tok[2];
  const std::size_t hash = frame_tok.find('#');
  if (hash == std::string_view::npos) {
    fail(error, "malformed frame token (no '#' separator)");
    return std::nullopt;
  }
  const std::string_view id_part = frame_tok.substr(0, hash);
  std::string_view data = frame_tok.substr(hash + 1);

  std::uint64_t id = 0;
  if (id_part.empty() || id_part.size() > 8 || !parse_hex(id_part, id)) {
    fail(error, "malformed CAN id (expected 1..8 hex digits)");
    return std::nullopt;
  }
  if (id > MAX_EXTENDED_ID) {
    fail(error, "CAN id exceeds the 29-bit extended range");
    return std::nullopt;
  }
  rec.frame.id = static_cast<CanId>(id);
  rec.frame.extended = id > MAX_STANDARD_ID || id_part.size() == 8;

  if (!data.empty() && data.front() == '#') {
    fail(error, "CAN FD record ('##') is not representable as classic CAN");
    return std::nullopt;
  }
  if (!data.empty() && (data.front() == 'R' || data.front() == 'r')) {
    fail(error, "remote frame record ('#R') is not supported");
    return std::nullopt;
  }
  if (data.size() % 2 != 0) {
    fail(error, "odd number of payload hex digits");
    return std::nullopt;
  }
  if (data.size() > 16) {
    fail(error, "payload exceeds 8 bytes (classic CAN)");
    return std::nullopt;
  }
  rec.frame.dlc = static_cast<std::uint8_t>(data.size() / 2);
  for (std::size_t i = 0; i < rec.frame.dlc; ++i) {
    const int hi = hex_digit(data[2 * i]);
    const int lo = hex_digit(data[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      fail(error, "malformed payload hex");
      return std::nullopt;
    }
    rec.frame.data[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  rec.frame.timestamp_us = rec.timestamp_us;
  return rec;
}

std::string format_candump_line(std::uint64_t timestamp_us,
                                std::string_view channel,
                                const CanFrame& frame) {
  char head[64];
  const bool ext = frame.extended || frame.id > MAX_STANDARD_ID;
  std::snprintf(head, sizeof head, "(%llu.%06llu) %.*s %0*X#",
                static_cast<unsigned long long>(timestamp_us / 1'000'000),
                static_cast<unsigned long long>(timestamp_us % 1'000'000),
                static_cast<int>(channel.size()), channel.data(), ext ? 8 : 3,
                frame.id);
  std::string out = head;
  for (std::size_t i = 0; i < frame.dlc && i < 8; ++i) {
    char b[4];
    std::snprintf(b, sizeof b, "%02X", frame.data[i]);
    out += b;
  }
  return out;
}

}  // namespace ecucsp::can
