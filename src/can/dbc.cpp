#include "can/dbc.hpp"

#include <cctype>
#include <sstream>

namespace ecucsp::can {

const DbcSignal* DbcMessage::find_signal(std::string_view name) const {
  for (const DbcSignal& s : signals) {
    if (s.spec.name == name) return &s;
  }
  return nullptr;
}

const DbcMessage* DbcDatabase::find_message(std::string_view name) const {
  for (const DbcMessage& m : messages) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const DbcMessage* DbcDatabase::find_message(CanId id) const {
  for (const DbcMessage& m : messages) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

namespace {

/// Minimal line-oriented tokenizer for DBC records.
class LineScanner {
 public:
  LineScanner(std::string_view text, int line) : text_(text), line_(line) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool done() {
    skip_ws();
    return pos_ >= text_.size();
  }
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!accept(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }
  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (start == pos_) fail("expected an identifier");
    return std::string(text_.substr(start, pos_ - start));
  }
  double number() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (start == pos_) fail("expected a number");
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }
  std::int64_t integer() { return static_cast<std::int64_t>(number()); }
  std::string quoted() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected a string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') out += text_[pos_++];
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }
  [[noreturn]] void fail(const std::string& msg) {
    throw DbcParseError(msg, line_);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

}  // namespace

DbcDatabase parse_dbc(std::string_view text) {
  DbcDatabase db;
  DbcMessage* current = nullptr;

  std::istringstream stream{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip leading whitespace to classify the record.
    std::size_t first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::string_view line = std::string_view(raw).substr(first);

    if (line.starts_with("VERSION")) {
      LineScanner s(line.substr(7), line_no);
      db.version = s.quoted();
      continue;
    }
    if (line.starts_with("BU_")) {
      LineScanner s(line.substr(3), line_no);
      s.expect(':');
      while (!s.done()) db.nodes.push_back(s.word());
      continue;
    }
    if (line.starts_with("BO_ ")) {
      LineScanner s(line.substr(4), line_no);
      DbcMessage m;
      m.line = line_no;
      const std::int64_t raw_id = s.integer();
      // Bit 31 marks an extended identifier in DBC files.
      if (raw_id & 0x80000000LL) {
        m.id = static_cast<CanId>(raw_id & MAX_EXTENDED_ID);
      } else {
        m.id = static_cast<CanId>(raw_id);
      }
      m.name = s.word();
      s.expect(':');
      m.dlc = static_cast<std::uint8_t>(s.integer());
      if (m.dlc > 8) s.fail("dlc exceeds 8");
      m.sender = s.word();
      db.messages.push_back(std::move(m));
      current = &db.messages.back();
      continue;
    }
    if (line.starts_with("SG_ ")) {
      if (!current) throw DbcParseError("SG_ outside a BO_ block", line_no);
      LineScanner s(line.substr(4), line_no);
      DbcSignal sig;
      sig.line = line_no;
      sig.spec.name = s.word();
      s.expect(':');
      sig.spec.start_bit = static_cast<std::uint16_t>(s.integer());
      s.expect('|');
      sig.spec.length = static_cast<std::uint16_t>(s.integer());
      s.expect('@');
      const std::int64_t order = s.integer();
      sig.spec.byte_order = order == 1 ? ByteOrder::Intel : ByteOrder::Motorola;
      if (s.accept('-')) {
        sig.spec.is_signed = true;
      } else {
        s.expect('+');
      }
      s.expect('(');
      sig.spec.factor = s.number();
      s.expect(',');
      sig.spec.offset = s.number();
      s.expect(')');
      s.expect('[');
      sig.spec.minimum = s.number();
      s.expect('|');
      sig.spec.maximum = s.number();
      s.expect(']');
      sig.spec.unit = s.quoted();
      while (!s.done()) {
        sig.receivers.push_back(s.word());
        s.accept(',');
      }
      current->signals.push_back(std::move(sig));
      continue;
    }
    if (line.starts_with("VAL_ ")) {
      LineScanner s(line.substr(5), line_no);
      const std::int64_t raw_id = s.integer();
      const CanId id = static_cast<CanId>(raw_id & MAX_EXTENDED_ID);
      const std::string sig_name = s.word();
      for (DbcMessage& m : db.messages) {
        if (m.id != id) continue;
        for (DbcSignal& sig : m.signals) {
          if (sig.spec.name != sig_name) continue;
          while (!s.done() && s.peek() != ';') {
            const std::int64_t v = s.integer();
            sig.value_table[v] = s.quoted();
          }
        }
      }
      continue;
    }
    if (line.starts_with("CM_ ")) {
      LineScanner s(line.substr(4), line_no);
      const std::string kind = s.word();
      if (kind == "BO_") {
        const CanId id = static_cast<CanId>(s.integer() & MAX_EXTENDED_ID);
        for (DbcMessage& m : db.messages) {
          if (m.id == id) m.comment = s.quoted();
        }
      } else if (kind == "SG_") {
        const CanId id = static_cast<CanId>(s.integer() & MAX_EXTENDED_ID);
        const std::string sig_name = s.word();
        for (DbcMessage& m : db.messages) {
          if (m.id != id) continue;
          for (DbcSignal& sig : m.signals) {
            if (sig.spec.name == sig_name) sig.comment = s.quoted();
          }
        }
      }
      continue;
    }
    // Unknown record types (BA_, NS_, BS_, ...) are tolerated, as real DBC
    // consumers must be.
  }
  return db;
}

}  // namespace ecucsp::can
