#include "can/bus.hpp"

#include <algorithm>

namespace ecucsp::can {

int CanBus::add_listener(BusListener cb) {
  listeners_.push_back(std::move(cb));
  return static_cast<int>(listeners_.size()) - 1;
}

void CanBus::transmit(const CanFrame& frame, int sender) {
  pending_.push_back({frame, sender, seq_++});
}

bool CanBus::deliver_one(std::uint64_t now_us) {
  if (pending_.empty()) return false;
  // Arbitration: lowest id wins; FIFO order breaks ties deterministically.
  auto winner = std::min_element(
      pending_.begin(), pending_.end(), [](const Pending& a, const Pending& b) {
        if (a.frame.id != b.frame.id) {
          return a.frame.wins_arbitration_over(b.frame);
        }
        return a.seq < b.seq;
      });
  Pending p = std::move(*winner);
  pending_.erase(winner);
  p.frame.timestamp_us = now_us;
  trace_.push_back(p.frame);
  for (const BusListener& cb : listeners_) cb(p.frame, p.sender);
  return true;
}

}  // namespace ecucsp::can
