#include "can/asc.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace ecucsp::can {

std::string write_asc(const std::vector<CanFrame>& frames,
                      const AscOptions& options) {
  std::string out;
  out += "date " + options.date + "\n";
  out += "base hex  timestamps absolute\n";
  out += "internal events logged\n";
  out += "Begin TriggerBlock\n";
  for (const CanFrame& f : frames) {
    char buf[160];
    const double secs = static_cast<double>(f.timestamp_us) / 1e6;
    int n = std::snprintf(buf, sizeof buf, "   %.6f %d  %X%s%*sRx   d %u",
                          secs, options.channel, f.id, f.extended ? "x" : "",
                          f.extended ? 12 : 13, "", f.dlc);
    out.append(buf, static_cast<std::size_t>(n));
    for (std::uint8_t i = 0; i < f.dlc && i < 8; ++i) {
      std::snprintf(buf, sizeof buf, " %02X", f.data[i]);
      out += buf;
    }
    out += "\n";
  }
  out += "End TriggerBlock\n";
  return out;
}

std::vector<CanFrame> parse_asc(std::string_view text) {
  std::vector<CanFrame> frames;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    double secs = 0;
    if (!(ls >> secs)) continue;  // header / non-record line
    int channel = 0;
    std::string id_text, dir, kind;
    unsigned dlc = 0;
    if (!(ls >> channel >> id_text >> dir >> kind >> dlc)) {
      throw AscParseError("malformed frame record", line_no);
    }
    if (kind != "d") continue;  // only data frames in this subset
    CanFrame f;
    if (!id_text.empty() && (id_text.back() == 'x' || id_text.back() == 'X')) {
      f.extended = true;
      id_text.pop_back();
    }
    f.id = static_cast<CanId>(std::stoul(id_text, nullptr, 16));
    if (dlc > 8) throw AscParseError("dlc exceeds 8", line_no);
    f.dlc = static_cast<std::uint8_t>(dlc);
    for (unsigned i = 0; i < dlc; ++i) {
      std::string byte_text;
      if (!(ls >> byte_text)) {
        throw AscParseError("missing payload byte", line_no);
      }
      f.data[i] =
          static_cast<std::uint8_t>(std::stoul(byte_text, nullptr, 16));
    }
    f.timestamp_us = static_cast<std::uint64_t>(secs * 1e6 + 0.5);
    frames.push_back(f);
  }
  return frames;
}

}  // namespace ecucsp::can
