#include "can/signal.hpp"

#include <cmath>
#include <stdexcept>

namespace ecucsp::can {

namespace {

/// Bit index sequence for a signal, LSB first, as absolute bit positions
/// (byte*8 + bit_within_byte, bit 0 = LSB of byte 0).
///
/// Intel: absolute positions start_bit, start_bit+1, ...
/// Motorola: the DBC start bit is the signal's MSB; successive bits walk
/// down within the byte and then to the *next* byte's bit 7.
std::uint16_t motorola_next(std::uint16_t pos) {
  const std::uint16_t bit = pos % 8;
  if (bit == 0) return static_cast<std::uint16_t>(pos + 15);  // next byte, bit 7
  return static_cast<std::uint16_t>(pos - 1);
}

void check(const SignalSpec& spec) {
  if (spec.length == 0 || spec.length > 64) {
    throw std::invalid_argument("signal '" + spec.name +
                                "' has invalid length");
  }
}

}  // namespace

std::uint64_t decode_raw(const std::array<std::uint8_t, 8>& data,
                         const SignalSpec& spec) {
  check(spec);
  std::uint64_t raw = 0;
  if (spec.byte_order == ByteOrder::Intel) {
    for (std::uint16_t i = 0; i < spec.length; ++i) {
      const std::uint16_t pos = spec.start_bit + i;
      if (pos >= 64) throw std::out_of_range("signal exceeds payload");
      const std::uint64_t bit = (data[pos / 8] >> (pos % 8)) & 1u;
      raw |= bit << i;
    }
  } else {
    // Walk from the MSB downwards; accumulate MSB-first.
    std::uint16_t pos = spec.start_bit;
    for (std::uint16_t i = 0; i < spec.length; ++i) {
      if (pos >= 64) throw std::out_of_range("signal exceeds payload");
      const std::uint64_t bit = (data[pos / 8] >> (pos % 8)) & 1u;
      raw = (raw << 1) | bit;
      pos = motorola_next(pos);
    }
  }
  return raw;
}

void encode_raw(std::array<std::uint8_t, 8>& data, const SignalSpec& spec,
                std::uint64_t raw) {
  check(spec);
  if (spec.length < 64) raw &= (1ULL << spec.length) - 1;
  if (spec.byte_order == ByteOrder::Intel) {
    for (std::uint16_t i = 0; i < spec.length; ++i) {
      const std::uint16_t pos = spec.start_bit + i;
      if (pos >= 64) throw std::out_of_range("signal exceeds payload");
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (pos % 8));
      if ((raw >> i) & 1u) {
        data[pos / 8] |= mask;
      } else {
        data[pos / 8] &= static_cast<std::uint8_t>(~mask);
      }
    }
  } else {
    std::uint16_t pos = spec.start_bit;
    for (std::uint16_t i = 0; i < spec.length; ++i) {
      if (pos >= 64) throw std::out_of_range("signal exceeds payload");
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (pos % 8));
      const std::uint16_t shift = spec.length - 1 - i;  // MSB first
      if ((raw >> shift) & 1u) {
        data[pos / 8] |= mask;
      } else {
        data[pos / 8] &= static_cast<std::uint8_t>(~mask);
      }
      pos = motorola_next(pos);
    }
  }
}

double decode_physical(const std::array<std::uint8_t, 8>& data,
                       const SignalSpec& spec) {
  std::uint64_t raw = decode_raw(data, spec);
  if (spec.is_signed && spec.length < 64 &&
      (raw & (1ULL << (spec.length - 1)))) {
    raw |= ~((1ULL << spec.length) - 1);  // sign extend
  }
  const auto value = static_cast<double>(static_cast<std::int64_t>(raw));
  return spec.is_signed ? value * spec.factor + spec.offset
                        : static_cast<double>(decode_raw(data, spec)) *
                                  spec.factor +
                              spec.offset;
}

void encode_physical(std::array<std::uint8_t, 8>& data, const SignalSpec& spec,
                     double physical) {
  const double raw_d = std::round((physical - spec.offset) / spec.factor);
  if (spec.is_signed) {
    encode_raw(data, spec, static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(raw_d)));
  } else {
    encode_raw(data, spec, static_cast<std::uint64_t>(raw_d));
  }
}

}  // namespace ecucsp::can
