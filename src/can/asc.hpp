// Vector ASC measurement logs.
//
// CANoe writes bus traces as '.asc' text logs; tooling across the
// automotive industry consumes them. This implements the classic CAN frame
// subset: header lines, then one record per frame:
//
//   0.001230 1  1A0             Rx   d 4 01 02 03 04
//
// (timestamp [s], channel, hex id, direction, 'd' data frame, dlc, bytes).
// write_asc() serialises a bus trace; parse_asc() reads one back, so logs
// from the simulated network round-trip and external logs can be replayed.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "can/frame.hpp"

namespace ecucsp::can {

struct AscOptions {
  std::string date = "Sat Jan 1 00:00:00.000 2022";
  int channel = 1;
};

std::string write_asc(const std::vector<CanFrame>& frames,
                      const AscOptions& options = {});

class AscParseError : public std::runtime_error {
 public:
  AscParseError(const std::string& what, int line)
      : std::runtime_error("asc parse error at line " + std::to_string(line) +
                           ": " + what),
        line(line) {}
  int line;
};

/// Parse the frame records of an ASC log (header lines are skipped).
std::vector<CanFrame> parse_asc(std::string_view text);

}  // namespace ecucsp::can
