// CANdb ('.dbc') network database parser.
//
// The paper's toolchain relies on CANoe's network databases to define
// "message formats, data payloads and relationships of data packets to
// network components" (Section IV-B-2). This parser covers the de-facto
// standard subset:
//   VERSION, BU_ (nodes), BO_ (messages), SG_ (signals),
//   VAL_ (value tables), CM_ (comments, retained for messages/signals).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "can/frame.hpp"
#include "can/signal.hpp"

namespace ecucsp::can {

struct DbcSignal {
  SignalSpec spec;
  std::vector<std::string> receivers;
  std::map<std::int64_t, std::string> value_table;  // VAL_ entries
  std::string comment;
  int line = 0;  // SG_ line in the source file (for diagnostics)
};

struct DbcMessage {
  CanId id = 0;
  std::string name;
  std::uint8_t dlc = 8;
  std::string sender;
  std::vector<DbcSignal> signals;
  std::string comment;
  int line = 0;  // BO_ line in the source file (for diagnostics)

  const DbcSignal* find_signal(std::string_view name) const;
};

struct DbcDatabase {
  std::string version;
  std::vector<std::string> nodes;  // BU_
  std::vector<DbcMessage> messages;

  const DbcMessage* find_message(std::string_view name) const;
  const DbcMessage* find_message(CanId id) const;
};

class DbcParseError : public std::runtime_error {
 public:
  DbcParseError(const std::string& what, int line)
      : std::runtime_error("dbc parse error at line " + std::to_string(line) +
                           ": " + what),
        line(line) {}
  int line;
};

DbcDatabase parse_dbc(std::string_view text);

}  // namespace ecucsp::can
