// CAN data frames.
//
// Classic CAN 2.0: 11-bit standard or 29-bit extended identifiers, up to
// 8 data bytes. Arbitration priority is "lower identifier wins", which the
// bus simulator honours when several nodes transmit in the same time slot.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ecucsp::can {

using CanId = std::uint32_t;

inline constexpr CanId MAX_STANDARD_ID = 0x7FF;
inline constexpr CanId MAX_EXTENDED_ID = 0x1FFFFFFF;

struct CanFrame {
  CanId id = 0;
  bool extended = false;
  std::uint8_t dlc = 8;              // data length code, 0..8
  std::array<std::uint8_t, 8> data{};  // payload, data[0..dlc-1] valid
  std::uint64_t timestamp_us = 0;    // set by the bus on delivery

  std::uint8_t byte(std::size_t i) const { return i < 8 ? data[i] : 0; }
  void set_byte(std::size_t i, std::uint8_t v) {
    if (i < 8) data[i] = v;
  }

  /// Arbitration order: lower id wins; standard frames beat extended ones
  /// with the same leading bits (approximated by comparing ids, then the
  /// IDE bit, as real arbitration does for equal leading ids).
  bool wins_arbitration_over(const CanFrame& other) const {
    if (id != other.id) return id < other.id;
    return !extended && other.extended;
  }

  bool operator==(const CanFrame&) const = default;

  /// "0x1A0 [4] 01 02 03 04" -- for logs and tests.
  std::string to_string() const;
};

}  // namespace ecucsp::can
