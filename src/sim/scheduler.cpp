#include "sim/scheduler.hpp"

#include <algorithm>

namespace ecucsp::sim {

bool Scheduler::empty() {
  // Drop cancelled entries at the front so empty() is accurate.
  while (!queue_.empty() && is_cancelled(queue_.top().id)) {
    std::erase(cancelled_, queue_.top().id);
    queue_.pop();
    --live_;
  }
  return queue_.empty();
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    --live_;
    if (is_cancelled(e.id)) {
      std::erase(cancelled_, e.id);
      continue;
    }
    now_ = e.when;
    e.action();
    return true;
  }
  return false;
}

bool Scheduler::run_one(SimTime until_us) {
  if (empty()) return false;  // also drains cancelled front entries
  if (queue_.top().when > until_us) return false;
  return step();
}

void Scheduler::run(SimTime until_us) {
  while (!queue_.empty()) {
    if (queue_.top().when > until_us) return;
    step();
  }
}

}  // namespace ecucsp::sim
