#include "sim/environment.hpp"

#include <stdexcept>

#include "core/rng.hpp"

namespace ecucsp::sim {

void Node::output(const can::CanFrame& frame) {
  if (!env_) throw std::logic_error("node '" + name_ + "' is not attached");
  env_->bus_.transmit(frame, bus_endpoint_);
  env_->pump_bus();
}

Scheduler::TaskId Node::set_timer(SimTime delay_us, Scheduler::Action action) {
  if (!env_) throw std::logic_error("node '" + name_ + "' is not attached");
  return env_->scheduler_.schedule_in(delay_us, std::move(action));
}

void Node::cancel_timer(Scheduler::TaskId id) {
  if (env_) env_->scheduler_.cancel(id);
}

SimTime Node::now() const { return env_ ? env_->scheduler_.now() : 0; }

void Node::write(const std::string& text) {
  if (env_) env_->log_.push_back({now(), name_, text});
}

void Environment::attach(Node& node) {
  node.env_ = this;
  nodes_.push_back(&node);
  node.bus_endpoint_ = bus_.add_listener(
      [this, n = &node](const can::CanFrame& frame, int sender) {
        // CAN is broadcast, but CANoe does not deliver a node's own frames
        // back to it; mirror that.
        if (sender == n->bus_endpoint_) return;
        n->on_message(frame);
      });
}

void Environment::pump_bus() {
  if (bus_pump_scheduled_ || bus_.idle()) return;
  bus_pump_scheduled_ = true;
  scheduler_.schedule_in(bus_.window_us(), [this] {
    bus_pump_scheduled_ = false;
    bus_.deliver_one(scheduler_.now());
    pump_bus();  // keep draining while frames are pending
  });
}

void Environment::start() {
  if (started_) return;
  started_ = true;
  for (Node* n : nodes_) n->on_start();
  pump_bus();
}

bool Environment::step(SimTime until_us) {
  return scheduler_.run_one(until_us);
}

void Environment::finish() {
  if (finished_ || !started_) return;
  finished_ = true;
  for (Node* n : nodes_) n->on_stop();
}

void Environment::inject(const can::CanFrame& frame) {
  // Sender id -1 is never a listener endpoint, so every node receives the
  // frame (nodes only filter their own endpoint).
  bus_.transmit(frame, /*sender=*/-1);
  pump_bus();
}

std::uint64_t Environment::rng() {
  return core::splitmix64(rng_state_);
}

void Environment::run(SimTime until_us) {
  start();
  scheduler_.run(until_us);
  finish();
}

}  // namespace ecucsp::sim
