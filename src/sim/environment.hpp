// The CANoe-like simulation environment: a scheduler, a CAN bus and a set
// of network nodes. Substitutes for the "simulated CANbus network ...
// implemented in CANoe" of the paper's Section VI.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "sim/scheduler.hpp"

namespace ecucsp::sim {

class Environment;

/// A network node (ECU, gateway, test harness...). Subclasses implement the
/// event hooks; the environment wires them to the clock and the bus.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  const std::string& name() const { return name_; }

  virtual void on_start() {}
  virtual void on_message(const can::CanFrame& /*frame*/) {}
  virtual void on_stop() {}

 protected:
  /// Transmit on the bus this node is attached to.
  void output(const can::CanFrame& frame);
  /// Schedule a callback (used for timers).
  Scheduler::TaskId set_timer(SimTime delay_us, Scheduler::Action action);
  void cancel_timer(Scheduler::TaskId id);
  SimTime now() const;
  /// Append to the environment's text log (CAPL's write()).
  void write(const std::string& text);

 private:
  friend class Environment;
  std::string name_;
  Environment* env_ = nullptr;
  int bus_endpoint_ = -1;
};

struct LogLine {
  SimTime time_us = 0;
  std::string node;
  std::string text;
};

class Environment {
 public:
  explicit Environment(std::uint64_t bus_window_us = 100)
      : bus_(bus_window_us) {}

  /// Attach a node. The environment keeps a non-owning pointer; nodes must
  /// outlive the environment run.
  void attach(Node& node);

  /// Fire every node's on_start at t=0, then run the simulation until the
  /// event queue drains or the deadline passes, then fire on_stop.
  void run(SimTime until_us = 1'000'000);

  Scheduler& scheduler() { return scheduler_; }
  can::CanBus& bus() { return bus_; }
  const std::vector<LogLine>& log() const { return log_; }

 private:
  friend class Node;
  void pump_bus();

  Scheduler scheduler_;
  can::CanBus bus_;
  std::vector<Node*> nodes_;
  std::vector<LogLine> log_;
  bool bus_pump_scheduled_ = false;
};

}  // namespace ecucsp::sim
