// The CANoe-like simulation environment: a scheduler, a CAN bus and a set
// of network nodes. Substitutes for the "simulated CANbus network ...
// implemented in CANoe" of the paper's Section VI.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "core/rng.hpp"
#include "sim/scheduler.hpp"

namespace ecucsp::sim {

class Environment;

/// A network node (ECU, gateway, test harness...). Subclasses implement the
/// event hooks; the environment wires them to the clock and the bus.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  const std::string& name() const { return name_; }

  virtual void on_start() {}
  virtual void on_message(const can::CanFrame& /*frame*/) {}
  virtual void on_stop() {}

 protected:
  /// Transmit on the bus this node is attached to.
  void output(const can::CanFrame& frame);
  /// Schedule a callback (used for timers).
  Scheduler::TaskId set_timer(SimTime delay_us, Scheduler::Action action);
  void cancel_timer(Scheduler::TaskId id);
  SimTime now() const;
  /// Append to the environment's text log (CAPL's write()).
  void write(const std::string& text);

 private:
  friend class Environment;
  std::string name_;
  Environment* env_ = nullptr;
  int bus_endpoint_ = -1;
};

struct LogLine {
  SimTime time_us = 0;
  std::string node;
  std::string text;
};

class Environment {
 public:
  /// `seed` parameterises every source of controlled variation in a run
  /// (rng()): two environments built with the same seed and driven by the
  /// same calls produce byte-identical bus traces and logs. The simulation
  /// itself is wall-clock-free and breaks scheduling ties by insertion
  /// order, so the seed is the *only* run-to-run degree of freedom.
  explicit Environment(std::uint64_t bus_window_us = 100,
                       std::uint64_t seed = 0)
      : bus_(bus_window_us), rng_state_(core::seed_state(seed)) {}

  /// Attach a node. The environment keeps a non-owning pointer; nodes must
  /// outlive the environment run.
  void attach(Node& node);

  /// Fire every node's on_start at t=0, then run the simulation until the
  /// event queue drains or the deadline passes, then fire on_stop.
  void run(SimTime until_us = 1'000'000);

  /// Stepwise variant of run() for drivers that interleave the simulation
  /// with external control (test harnesses polling a cancel token): start()
  /// fires on_start once, step() runs one scheduled task (false when the
  /// queue is drained or the next task lies beyond `until_us`), finish()
  /// fires on_stop once. run() == start(); while(step(u)); finish().
  void start();
  bool step(SimTime until_us = UINT64_MAX);
  void finish();

  /// Scriptable injection hook: transmit `frame` on the bus as if sent by
  /// an external test harness or attacker node (no attached Node required;
  /// every attached node hears it). Delivery honours arbitration and
  /// consumes bus windows exactly like node output.
  void inject(const can::CanFrame& frame);

  /// Deterministic per-environment random stream (splitmix64 over the
  /// constructor seed). Harnesses use it to jitter stimulus timing so
  /// different seeds explore different interleavings reproducibly.
  std::uint64_t rng();

  Scheduler& scheduler() { return scheduler_; }
  can::CanBus& bus() { return bus_; }
  const std::vector<LogLine>& log() const { return log_; }

 private:
  friend class Node;
  void pump_bus();

  Scheduler scheduler_;
  can::CanBus bus_;
  std::vector<Node*> nodes_;
  std::vector<LogLine> log_;
  bool bus_pump_scheduled_ = false;
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t rng_state_;
};

}  // namespace ecucsp::sim
