// Discrete-event scheduler: the simulation clock behind the CANoe-like
// environment. Deterministic: ties in time are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ecucsp::sim {

using SimTime = std::uint64_t;  // microseconds

class Scheduler {
 public:
  using Action = std::function<void()>;
  using TaskId = std::uint64_t;

  /// Schedule `action` to run `delay_us` after the current time.
  /// Returns an id usable with cancel().
  TaskId schedule_in(SimTime delay_us, Action action) {
    return schedule_at(now_ + delay_us, std::move(action));
  }
  TaskId schedule_at(SimTime when_us, Action action) {
    const TaskId id = next_id_++;
    queue_.push(Entry{when_us, id, std::move(action), false});
    ++live_;
    return id;
  }

  /// Cancel a scheduled task. Cancelling an already-run or unknown id is a
  /// no-op (mirrors CAPL's cancelTimer semantics).
  void cancel(TaskId id) { cancelled_.push_back(id); }

  SimTime now() const { return now_; }
  bool empty();

  /// Run the next pending task; returns false when nothing is left.
  bool step();

  /// Run the next pending task only if it is due at or before `until_us`;
  /// returns false when the queue is drained or the next task lies beyond
  /// the deadline. This is the primitive for drivers that interleave the
  /// simulation with external control (cancel-token polling).
  bool run_one(SimTime until_us);

  /// Run until the queue drains or `until_us` is reached.
  void run(SimTime until_us = UINT64_MAX);

 private:
  struct Entry {
    SimTime when;
    TaskId id;
    Action action;
    bool cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous tasks
    }
  };

  bool is_cancelled(TaskId id) const {
    for (TaskId c : cancelled_) {
      if (c == id) return true;
    }
    return false;
  }

  SimTime now_ = 0;
  TaskId next_id_ = 1;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<TaskId> cancelled_;
};

}  // namespace ecucsp::sim
