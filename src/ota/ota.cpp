#include "ota/ota.hpp"

#include <stdexcept>

#include "security/properties.hpp"

namespace ecucsp::ota {

const std::vector<MessageTypeRow>& message_table() {
  static const std::vector<MessageTypeRow> rows = {
      {"Diagnose", "reqSw", "VMG", "ECU", "Request diagnose software status"},
      {"Diagnose", "rptSw", "ECU", "VMG", "Result of software diagnosis"},
      {"Update", "reqApp", "VMG", "ECU", "Request apply update module"},
      {"Update", "rptUpd", "ECU", "VMG", "Result of applying update module"},
  };
  return rows;
}

const std::vector<Requirement>& requirements() {
  static const std::vector<Requirement> rows = {
      {"R01",
       "At start of update process, the VMG shall send a software inventory "
       "request message to all ECUs."},
      {"R02",
       "On receipt of software inventory request, the ECU shall send a "
       "software list response message."},
      {"R03",
       "On receipt of apply update message from the VMG, the ECU shall check "
       "the package contents and apply the update."},
      {"R04",
       "On completion of update module installation, the ECU shall send "
       "software update result message to the VMG."},
      {"R05", "It is assumed the system uses shared keys."},
  };
  return rows;
}

std::unique_ptr<OtaModel> build_ota_model() {
  auto model = std::make_unique<OtaModel>();
  Context& ctx = model->ctx;

  const Value reqSw = Value::symbol(ctx.sym("reqSw"));
  const Value rptSw = Value::symbol(ctx.sym("rptSw"));
  const Value reqApp = Value::symbol(ctx.sym("reqApp"));
  const Value rptUpd = Value::symbol(ctx.sym("rptUpd"));
  const Value genuine = Value::symbol(ctx.sym("genuine"));
  const Value forged = Value::symbol(ctx.sym("forged"));
  const std::vector<Value> msgs{reqSw, rptSw, reqApp, rptUpd};
  const std::vector<Value> auth{genuine, forged};

  const ChannelId send = ctx.channel("send", {msgs, auth});
  const ChannelId rec = ctx.channel("rec", {msgs, auth});
  const ChannelId install_chan = ctx.channel("install");

  model->send_reqSw = ctx.event(send, {reqSw, genuine});
  model->rec_rptSw = ctx.event(rec, {rptSw, genuine});
  model->send_reqApp = ctx.event(send, {reqApp, genuine});
  model->rec_rptUpd = ctx.event(rec, {rptUpd, genuine});
  model->forged_reqApp = ctx.event(send, {reqApp, forged});
  model->install = ctx.event(install_chan);

  // Partition the network alphabet by authenticity tag.
  {
    std::vector<EventId> g, f;
    for (const ChannelId c : {send, rec}) {
      for (const EventId e : ctx.events_of(c)) {
        if (ctx.event_fields(e)[1] == genuine) {
          g.push_back(e);
        } else {
          f.push_back(e);
        }
      }
    }
    model->genuine_events = EventSet(std::move(g));
    model->forged_events = EventSet(std::move(f));
  }

  // --- VMG: drives one update cycle, forever (Section V-A) -----------------
  ctx.define("OTA_VMG", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(
        cx.event(send, {reqSw, genuine}),
        cx.prefix(cx.event(rec, {rptSw, genuine}),
                  cx.prefix(cx.event(send, {reqApp, genuine}),
                            cx.prefix(cx.event(rec, {rptUpd, genuine}),
                                      cx.var("OTA_VMG")))));
  });
  model->vmg = ctx.var("OTA_VMG");

  // --- ECU variants ----------------------------------------------------------
  // Shared helper: the ECU's honest replies always carry valid MACs.
  const auto ecu_body = [=](Context& cx, bool verify_mac,
                            std::string_view self) {
    std::vector<ProcessRef> branches;
    const ProcessRef loop = cx.var(self);
    // Genuine inventory request -> diagnosis report (R02).
    branches.push_back(cx.prefix(
        cx.event(send, {reqSw, genuine}),
        cx.prefix(cx.event(rec, {rptSw, genuine}), loop)));
    // Apply-update request -> verify, install, report (R03, R04).
    branches.push_back(cx.prefix(
        cx.event(send, {reqApp, genuine}),
        cx.prefix(cx.event(install_chan, {}),
                  cx.prefix(cx.event(rec, {rptUpd, genuine}), loop))));
    if (verify_mac) {
      // Forged requests fail MAC verification and are discarded.
      branches.push_back(
          cx.prefix(cx.event(send, {reqApp, forged}), loop));
      branches.push_back(cx.prefix(cx.event(send, {reqSw, forged}), loop));
    } else {
      // No verification: a forged update request installs too.
      branches.push_back(cx.prefix(
          cx.event(send, {reqApp, forged}),
          cx.prefix(cx.event(install_chan, {}),
                    cx.prefix(cx.event(rec, {rptUpd, genuine}), loop))));
      branches.push_back(cx.prefix(
          cx.event(send, {reqSw, forged}),
          cx.prefix(cx.event(rec, {rptSw, genuine}), loop)));
    }
    // Other forged traffic is ignored (a CAN node drops frames it does not
    // expect).
    for (const Value& m : {rptSw, rptUpd}) {
      branches.push_back(cx.prefix(cx.event(send, {m, forged}), loop));
    }
    return cx.ext_choice(branches);
  };

  ctx.define("OTA_ECU_MAC", [=](Context& cx, std::span<const Value>) {
    return ecu_body(cx, true, "OTA_ECU_MAC");
  });
  ctx.define("OTA_ECU_OPEN", [=](Context& cx, std::span<const Value>) {
    return ecu_body(cx, false, "OTA_ECU_OPEN");
  });
  model->ecu_mac = ctx.var("OTA_ECU_MAC");
  model->ecu_unprotected = ctx.var("OTA_ECU_OPEN");

  // --- attacker: inject any forged message, at any time -----------------------
  model->attacker = ctx.run(model->forged_events);

  // --- compositions -------------------------------------------------------------
  const auto compose = [&](ProcessRef ecu, ProcessRef attack_env) {
    // ECU synchronises with the attack environment on forged events, and
    // with the VMG on genuine network traffic; install stays local.
    const ProcessRef ecu_in_env = ctx.par(ecu, model->forged_events, attack_env);
    return ctx.par(model->vmg, model->genuine_events, ecu_in_env);
  };
  model->system_plain = compose(model->ecu_mac, ctx.stop());
  model->system_attacked = compose(model->ecu_mac, model->attacker);
  model->system_unprotected = compose(model->ecu_unprotected, model->attacker);

  return model;
}

RequirementCheck requirement_check_parts(OtaModel& model, std::string_view id,
                                         ProcessRef system) {
  Context& ctx = model.ctx;
  if (id == "R01") {
    // The very first network action is the inventory request.
    return {ctx.prefix(model.send_reqSw, ctx.run(ctx.alphabet())), system,
            Model::Traces};
  }
  if (id == "R02") {
    const auto p =
        security::response_parts(ctx, system, model.send_reqSw, model.rec_rptSw);
    return {p.spec, p.impl, Model::Traces};
  }
  if (id == "R03") {
    const auto p = security::response_parts(ctx, system, model.send_reqApp,
                                            model.install);
    return {p.spec, p.impl, Model::Traces};
  }
  if (id == "R04") {
    const auto p = security::response_parts(ctx, system, model.install,
                                            model.rec_rptUpd);
    return {p.spec, p.impl, Model::Traces};
  }
  if (id == "R05") {
    // Installation requires a prior genuine update request.
    const auto p = security::precedence_witness_parts(
        ctx, system, model.send_reqApp, model.install);
    return {p.spec, p.impl, Model::Traces};
  }
  throw std::out_of_range("unknown requirement id '" + std::string(id) + "'");
}

CheckResult check_requirement_on(OtaModel& model, std::string_view id,
                                 ProcessRef system, std::size_t max_states,
                                 CancelToken* cancel) {
  const RequirementCheck rc = requirement_check_parts(model, id, system);
  return check_refinement(model.ctx, rc.spec, rc.impl, rc.model, max_states,
                          cancel);
}

CheckResult check_requirement(OtaModel& model, std::string_view id,
                              std::size_t max_states, CancelToken* cancel) {
  // The paper's default reading: R01-R04 are functional requirements of the
  // benign system; R05 ("shared keys make MACs unforgeable") is checked on
  // the MAC-verifying ECU under active attack.
  const ProcessRef system =
      id == "R05" ? model.system_attacked : model.system_plain;
  return check_requirement_on(model, id, system, max_states, cancel);
}

// --- extended scope: Update Server (Section VIII-A) ----------------------------

std::unique_ptr<OtaExtendedModel> build_ota_extended_model() {
  auto model = std::make_unique<OtaExtendedModel>();
  Context& ctx = model->ctx;

  const Value diagnose = Value::symbol(ctx.sym("diagnose"));
  const Value update_check = Value::symbol(ctx.sym("update_check"));
  const Value update = Value::symbol(ctx.sym("update"));
  const Value update_report = Value::symbol(ctx.sym("update_report"));
  const std::vector<Value> srv_msgs{diagnose, update_check, update,
                                    update_report};

  const Value reqSw = Value::symbol(ctx.sym("reqSw"));
  const Value rptSw = Value::symbol(ctx.sym("rptSw"));
  const Value reqApp = Value::symbol(ctx.sym("reqApp"));
  const Value rptUpd = Value::symbol(ctx.sym("rptUpd"));
  const Value genuine = Value::symbol(ctx.sym("genuine"));
  const Value forged = Value::symbol(ctx.sym("forged"));
  const std::vector<Value> can_msgs{reqSw, rptSw, reqApp, rptUpd};
  const std::vector<Value> auth{genuine, forged};

  // Cellular leg: TLS-protected, so no forged tag dimension.
  const ChannelId down = ctx.channel("down", {srv_msgs});
  const ChannelId up = ctx.channel("up", {srv_msgs});
  // In-vehicle CAN leg: attackable, as in the base model.
  const ChannelId send = ctx.channel("send", {can_msgs, auth});
  const ChannelId rec = ctx.channel("rec", {can_msgs, auth});
  const ChannelId install_chan = ctx.channel("install");

  model->down_diagnose = ctx.event(down, {diagnose});
  model->up_update_check = ctx.event(up, {update_check});
  model->down_update = ctx.event(down, {update});
  model->up_update_report = ctx.event(up, {update_report});
  model->send_reqSw = ctx.event(send, {reqSw, genuine});
  model->rec_rptSw = ctx.event(rec, {rptSw, genuine});
  model->send_reqApp = ctx.event(send, {reqApp, genuine});
  model->rec_rptUpd = ctx.event(rec, {rptUpd, genuine});
  model->forged_reqApp = ctx.event(send, {reqApp, forged});
  model->install = ctx.event(install_chan);

  EventSet genuine_can, forged_can;
  for (const ChannelId c : {send, rec}) {
    for (const EventId e : ctx.events_of(c)) {
      if (ctx.event_fields(e)[1] == genuine) {
        genuine_can.insert(e);
      } else {
        forged_can.insert(e);
      }
    }
  }
  const EventSet srv_events = ctx.events_of(down).set_union(ctx.events_of(up));

  // Update Server: one campaign per cycle (X.1373's server-side dialogue).
  ctx.define("OTAX_SERVER", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(
        cx.event(down, {diagnose}),
        cx.prefix(cx.event(up, {update_check}),
                  cx.prefix(cx.event(down, {update}),
                            cx.prefix(cx.event(up, {update_report}),
                                      cx.var("OTAX_SERVER")))));
  });
  model->server = ctx.var("OTAX_SERVER");

  // VMG: bridges the two legs. It only issues reqApp after the server
  // delivered the package, and only reports after the ECU confirmed.
  ctx.define("OTAX_VMG", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(
        cx.event(down, {diagnose}),
        cx.prefix(
            cx.event(send, {reqSw, genuine}),
            cx.prefix(
                cx.event(rec, {rptSw, genuine}),
                cx.prefix(
                    cx.event(up, {update_check}),
                    cx.prefix(
                        cx.event(down, {update}),
                        cx.prefix(
                            cx.event(send, {reqApp, genuine}),
                            cx.prefix(
                                cx.event(rec, {rptUpd, genuine}),
                                cx.prefix(cx.event(up, {update_report}),
                                          cx.var("OTAX_VMG")))))))));
  });
  model->vmg = ctx.var("OTAX_VMG");

  // ECU variants, as in the base model.
  const auto ecu_body = [=](Context& cx, bool verify_mac,
                            std::string_view self) {
    std::vector<ProcessRef> branches;
    const ProcessRef loop = cx.var(self);
    branches.push_back(
        cx.prefix(cx.event(send, {reqSw, genuine}),
                  cx.prefix(cx.event(rec, {rptSw, genuine}), loop)));
    branches.push_back(cx.prefix(
        cx.event(send, {reqApp, genuine}),
        cx.prefix(cx.event(install_chan, {}),
                  cx.prefix(cx.event(rec, {rptUpd, genuine}), loop))));
    if (verify_mac) {
      branches.push_back(cx.prefix(cx.event(send, {reqApp, forged}), loop));
      branches.push_back(cx.prefix(cx.event(send, {reqSw, forged}), loop));
    } else {
      branches.push_back(cx.prefix(
          cx.event(send, {reqApp, forged}),
          cx.prefix(cx.event(install_chan, {}),
                    cx.prefix(cx.event(rec, {rptUpd, genuine}), loop))));
      branches.push_back(
          cx.prefix(cx.event(send, {reqSw, forged}),
                    cx.prefix(cx.event(rec, {rptSw, genuine}), loop)));
    }
    for (const Value& m : {rptSw, rptUpd}) {
      branches.push_back(cx.prefix(cx.event(send, {m, forged}), loop));
    }
    return cx.ext_choice(branches);
  };
  ctx.define("OTAX_ECU_MAC", [=](Context& cx, std::span<const Value>) {
    return ecu_body(cx, true, "OTAX_ECU_MAC");
  });
  ctx.define("OTAX_ECU_OPEN", [=](Context& cx, std::span<const Value>) {
    return ecu_body(cx, false, "OTAX_ECU_OPEN");
  });
  model->ecu = ctx.var("OTAX_ECU_MAC");

  const ProcessRef attacker = ctx.run(forged_can);
  const auto compose = [&](ProcessRef ecu, ProcessRef attack_env) {
    const ProcessRef can_leg = ctx.par(
        model->vmg, genuine_can, ctx.par(ecu, forged_can, attack_env));
    return ctx.par(model->server, srv_events, can_leg);
  };
  model->system = compose(ctx.var("OTAX_ECU_MAC"), ctx.stop());
  model->system_attacked = compose(ctx.var("OTAX_ECU_MAC"), attacker);
  model->system_unprotected = compose(ctx.var("OTAX_ECU_OPEN"), attacker);
  return model;
}

CheckResult check_extended_property(OtaExtendedModel& model,
                                    std::string_view id,
                                    std::size_t max_states,
                                    CancelToken* cancel) {
  Context& ctx = model.ctx;
  if (id == "E1") {
    // Installation requires prior server authorisation.
    return security::check_precedence(ctx, model.system, model.down_update,
                                      model.install, max_states, cancel);
  }
  if (id == "E2") {
    return security::check_precedence(ctx, model.system, model.install,
                                      model.up_update_report, max_states,
                                      cancel);
  }
  if (id == "E3") {
    return check_deadlock_free(ctx, model.system, max_states, cancel);
  }
  if (id == "E4") {
    return security::check_precedence(ctx, model.system_attacked,
                                      model.down_update, model.install,
                                      max_states, cancel);
  }
  if (id == "E5") {
    return security::check_precedence_witness(ctx, model.system_unprotected,
                                              model.down_update, model.install,
                                              max_states, cancel);
  }
  throw std::out_of_range("unknown extended property '" + std::string(id) +
                          "'");
}

// --- timed scope: tock-CSP (Section VII-B) --------------------------------------

std::unique_ptr<OtaTimedModel> build_ota_timed_model() {
  auto model = std::make_unique<OtaTimedModel>();
  Context& ctx = model->ctx;

  const Value reqSw = Value::symbol(ctx.sym("reqSw"));
  const Value rptSw = Value::symbol(ctx.sym("rptSw"));
  const ChannelId send = ctx.channel("send", {{reqSw, rptSw}});
  const ChannelId rec = ctx.channel("rec", {{reqSw, rptSw}});
  const ChannelId tock_chan = ctx.channel("tock");

  model->tock = ctx.event(tock_chan);
  model->send_reqSw = ctx.event(send, {reqSw});
  model->rec_rptSw = ctx.event(rec, {rptSw});

  const EventId tock = model->tock;
  const EventId req = model->send_reqSw;
  const EventId rpt = model->rec_rptSw;

  // VMG with tock-timed retransmission: if a tock passes while waiting, the
  // request is resent; a late reply is still accepted.
  ctx.define("TVMG", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(req, cx.var("TVMG_WAIT"));
  });
  ctx.define("TVMG_WAIT", [=](Context& cx, std::span<const Value>) {
    return cx.ext_choice(cx.prefix(rpt, cx.var("TVMG_REST")),
                         cx.prefix(tock, cx.var("TVMG_RETRY")));
  });
  ctx.define("TVMG_RETRY", [=](Context& cx, std::span<const Value>) {
    return cx.ext_choice(cx.prefix(req, cx.var("TVMG_WAIT")),
                         cx.prefix(rpt, cx.var("TVMG_REST")));
  });
  ctx.define("TVMG_REST", [=](Context& cx, std::span<const Value>) {
    return cx.prefix(tock, cx.var("TVMG"));
  });

  // Urgent ECU: while a reply is pending it refuses tock (maximal progress).
  ctx.define("TECU_URGENT", [=](Context& cx, std::span<const Value>) {
    return cx.ext_choice(cx.prefix(req, cx.prefix(rpt, cx.var("TECU_URGENT"))),
                         cx.prefix(tock, cx.var("TECU_URGENT")));
  });
  // Lazy ECU: may let a single tock pass before answering.
  ctx.define("TECU_LAZY", [=](Context& cx, std::span<const Value>) {
    return cx.ext_choice(
        cx.prefix(req, cx.ext_choice(
                           cx.prefix(rpt, cx.var("TECU_LAZY")),
                           cx.prefix(tock,
                                     cx.prefix(rpt, cx.var("TECU_LAZY"))))),
        cx.prefix(tock, cx.var("TECU_LAZY")));
  });

  const EventSet sync{tock, req, rpt};
  model->system_urgent =
      ctx.par(ctx.var("TVMG"), sync, ctx.var("TECU_URGENT"));
  model->system_lazy = ctx.par(ctx.var("TVMG"), sync, ctx.var("TECU_LAZY"));
  return model;
}

// --- reference CAPL sources and CANdb (Section VI demonstration) --------------

std::string_view vmg_capl_source() {
  return R"(/* Vehicle Mobile Gateway (VMG): drives the X.1373 update dialogue. */
variables {
  message 0x100 reqSw;    // SwInventoryReq
  message 0x103 reqApp;   // UpdApplyReq
  msTimer tRetry;
  int macKey = 0xA5;      // shared key (R05), toy
}

on start {
  output(reqSw);          // R01: inventory request opens the process
  setTimer(tRetry, 100);
}

on timer tRetry {
  output(reqSw);          // retransmit until the ECU answers
  setTimer(tRetry, 100);
}

on message SwReport {     // rptSw
  cancelTimer(tRetry);
  reqApp.byte(0) = 1;                      // module id
  reqApp.byte(7) = macKey ^ reqApp.byte(0); // attach MAC tag
  output(reqApp);
}

on message UpdReport {    // rptUpd
  write("update result %d", this.byte(0));
}
)";
}

std::string_view ecu_capl_source() {
  return R"(/* Target ECU: answers diagnosis and applies verified updates. */
variables {
  message 0x101 rptSw;    // SwReport
  message 0x104 rptUpd;   // UpdReport
  int macKey = 0xA5;      // shared key (R05), toy
  int installs = 0;
}

on message SwInventoryReq {    // reqSw
  rptSw.byte(0) = 2;           // current software version
  output(rptSw);               // R02
}

on message UpdApplyReq {       // reqApp
  if (this.byte(7) == (macKey ^ this.byte(0))) {  // verify MAC (R05)
    installs = installs + 1;   // R03: apply the update module
    rptUpd.byte(0) = 0;        // success
    output(rptUpd);            // R04
  }
}
)";
}

std::string_view ota_dbc_text() {
  return R"(VERSION "1.0"

BU_: VMG TargetECU

BO_ 256 SwInventoryReq: 8 VMG
 SG_ ReqType : 0|8@1+ (1,0) [0|255] "" TargetECU

BO_ 257 SwReport: 8 TargetECU
 SG_ Status : 0|8@1+ (1,0) [0|3] "" VMG
 SG_ SwVersion : 8|16@1+ (1,0) [0|65535] "" VMG

BO_ 259 UpdApplyReq: 8 VMG
 SG_ ModuleId : 0|8@1+ (1,0) [0|255] "" TargetECU
 SG_ MacTag : 56|8@1+ (1,0) [0|255] "" TargetECU

BO_ 260 UpdReport: 8 TargetECU
 SG_ Result : 0|8@1+ (1,0) [0|3] "" VMG

VAL_ 260 Result 0 "ok" 1 "rejected" 2 "failed" ;
CM_ BO_ 259 "Request apply update module";
)";
}

}  // namespace ecucsp::ota
