// The paper's case study: ITU-T X.1373 Over-The-Air software update
// (Section V), scoped to the Vehicle Mobile Gateway (VMG) and one target
// ECU as in Figure 2.
//
// Network model: two directional channels carrying the Table II message
// types, each tagged with an authenticity field:
//   channel send : Msg.Auth   -- VMG -> ECU
//   channel rec  : Msg.Auth   -- ECU -> VMG
// `genuine` marks a message whose MAC verifies under the shared key (R05);
// `forged` marks attacker-injected traffic (the attacker lacks the key, so
// it can only produce forged tags — the symbolic-MAC abstraction of Ryan &
// Schneider that the paper cites). The Dolev-Yao attacker is RUN over the
// forged events: it may inject any forged message at any time.
//
// Two ECU variants make the security argument:
//   * ecu_mac          — verifies the MAC, discards forged update requests
//   * ecu_unprotected  — applies any update request (no R05)
// The integrity property (R03/R05): `install` happens only after a genuine
// reqApp. It holds for the MAC variant under attack and fails for the
// unprotected variant with the counterexample <send.reqApp.forged, install>.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/context.hpp"
#include "refine/check.hpp"

namespace ecucsp::ota {

/// One row of the paper's Table II (message types, from ITU-T X.1373).
struct MessageTypeRow {
  std::string type;
  std::string id;
  std::string from;
  std::string to;
  std::string description;
};
const std::vector<MessageTypeRow>& message_table();

/// One row of the paper's Table III (secure update system requirements).
struct Requirement {
  std::string id;
  std::string text;
};
const std::vector<Requirement>& requirements();

struct OtaModel {
  OtaModel() = default;
  OtaModel(const OtaModel&) = delete;
  OtaModel& operator=(const OtaModel&) = delete;

  Context ctx;

  // Key events.
  EventId send_reqSw = 0;    // genuine software inventory request
  EventId rec_rptSw = 0;     // genuine diagnosis report
  EventId send_reqApp = 0;   // genuine apply-update request
  EventId rec_rptUpd = 0;    // genuine update result
  EventId forged_reqApp = 0; // attacker-injected apply-update request
  EventId install = 0;       // ECU applies the update module

  EventSet genuine_events;  // network events with a valid MAC
  EventSet forged_events;   // attacker-producible network events

  ProcessRef vmg = nullptr;
  ProcessRef ecu_mac = nullptr;
  ProcessRef ecu_unprotected = nullptr;
  ProcessRef attacker = nullptr;  // RUN(forged_events)

  ProcessRef system_plain = nullptr;        // VMG || ECU_mac, no attacker
  ProcessRef system_attacked = nullptr;     // MAC'd ECU under attack
  ProcessRef system_unprotected = nullptr;  // unprotected ECU under attack
};

std::unique_ptr<OtaModel> build_ota_model();

/// Run the refinement/property check that formalises requirement `id`
/// ("R01".."R05"). Throws std::out_of_range for unknown ids. The optional
/// state budget and CancelToken reach every exploration loop inside the
/// check, so batch schedulers can bound and abort cells directly.
CheckResult check_requirement(OtaModel& model, std::string_view id,
                              std::size_t max_states = 1u << 22,
                              CancelToken* cancel = nullptr);

/// Same, but against an explicit system variant (`model.system_plain`,
/// `model.system_attacked` or `model.system_unprotected`). This is what the
/// src/verify batch scheduler uses to sweep the full requirement x attacker
/// matrix; check_requirement picks the paper's default pairing.
CheckResult check_requirement_on(OtaModel& model, std::string_view id,
                                 ProcessRef system,
                                 std::size_t max_states = 1u << 22,
                                 CancelToken* cancel = nullptr);

/// The exact refinement check_requirement_on would run for `id` against
/// `system`: (spec, possibly-projected impl, model). Exposed so the verify
/// layer's static pruner reasons about the identical terms — any drift here
/// would show up as a verdict mismatch in the CI prune-coherence gate.
/// Throws std::out_of_range for unknown ids.
struct RequirementCheck {
  ProcessRef spec = nullptr;
  ProcessRef impl = nullptr;
  Model model = Model::Traces;
};

RequirementCheck requirement_check_parts(OtaModel& model, std::string_view id,
                                         ProcessRef system);

// --- extended scope: the Update Server (paper Section VIII-A) ---------------
//
// The paper restricts its demonstration to VMG + ECU and names the Update
// Server with message types diagnose / update_check / update / update_report
// as future work. This model implements that extension: a three-component
// system where the server drives the update campaign over a (TLS-protected,
// hence unforgeable) cellular link, while the in-vehicle CAN leg between VMG
// and ECU remains attackable as before.
struct OtaExtendedModel {
  OtaExtendedModel() = default;
  OtaExtendedModel(const OtaExtendedModel&) = delete;
  OtaExtendedModel& operator=(const OtaExtendedModel&) = delete;

  Context ctx;

  // Server <-> VMG leg (X.1373 message types the paper lists as future work).
  EventId down_diagnose = 0;       // server requests vehicle diagnosis
  EventId up_update_check = 0;     // VMG reports status / asks for update
  EventId down_update = 0;         // server delivers the update package
  EventId up_update_report = 0;    // VMG reports the final result
  // VMG <-> ECU leg (as in the base model).
  EventId send_reqSw = 0;
  EventId rec_rptSw = 0;
  EventId send_reqApp = 0;
  EventId rec_rptUpd = 0;
  EventId forged_reqApp = 0;
  EventId install = 0;

  ProcessRef server = nullptr;
  ProcessRef vmg = nullptr;
  ProcessRef ecu = nullptr;

  ProcessRef system = nullptr;           // full chain, MAC'd ECU, no attacker
  ProcessRef system_attacked = nullptr;  // CAN-side attacker, MAC'd ECU
  ProcessRef system_unprotected = nullptr;
};

std::unique_ptr<OtaExtendedModel> build_ota_extended_model();

/// End-to-end properties of the extended chain:
///   "E1": installation requires prior server authorisation (down.update)
///   "E2": the server only receives update_report after installation
///   "E3": the whole chain is deadlock free
///   "E4": under CAN-side attack, E1 still holds for the MAC'd ECU
///   "E5": dropping MAC verification breaks E1 under attack (expected FAIL)
CheckResult check_extended_property(OtaExtendedModel& model,
                                    std::string_view id,
                                    std::size_t max_states = 1u << 22,
                                    CancelToken* cancel = nullptr);

// --- timed scope: tock-CSP (paper Section VII-B) ----------------------------
//
// The paper names the 'tock' discipline as the practical route to modelling
// time-dependent ECU features. This model times the diagnosis dialogue with
// a global tock event on which every component synchronises:
//   * the VMG retransmits reqSw whenever a tock passes while it waits;
//   * the "urgent" ECU refuses tock while a reply is pending (maximal
//     progress), so the reply arrives within 0 tocks;
//   * the "lazy" ECU may let one tock pass first, so only a 1-tock bound
//     holds (check_bounded_response sees the difference).
struct OtaTimedModel {
  OtaTimedModel() = default;
  OtaTimedModel(const OtaTimedModel&) = delete;
  OtaTimedModel& operator=(const OtaTimedModel&) = delete;

  Context ctx;
  EventId tock = 0;
  EventId send_reqSw = 0;
  EventId rec_rptSw = 0;
  ProcessRef system_urgent = nullptr;
  ProcessRef system_lazy = nullptr;
};

std::unique_ptr<OtaTimedModel> build_ota_timed_model();

/// Reference CAPL sources for the demonstration network (Section VI): the
/// programs the model extractor translates in examples and benches.
std::string_view vmg_capl_source();
std::string_view ecu_capl_source();
/// Matching CANdb database text.
std::string_view ota_dbc_text();

}  // namespace ecucsp::ota
