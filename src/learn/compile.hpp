// Hypothesis compilation: from learned hypotheses to the repo's standard
// automaton/LTS/process representations, plus the equivalence judgements
// the differential battery is built on.
//
// A Hypothesis is already a deterministic automaton over event-name
// strings; this layer (1) converts it to conform::SymAutomaton so suite
// generation can walk it, (2) interns it into a Context as an Lts /
// process term so the refinement engine can check R01–R05 against it, and
// (3) decides strong-bisimulation equivalence of two string-event automata
// by minimising their disjoint union with refine's minimize_strong — the
// judge the learn_diff_test battery uses to compare learned hypotheses
// with their seeded spec automata.
#pragma once

#include <optional>
#include <string>
#include <set>
#include <vector>

#include "conform/automaton.hpp"
#include "core/context.hpp"
#include "learn/learner.hpp"
#include "refine/lts.hpp"

namespace ecucsp::learn {

/// The hypothesis as a conform automaton (live transitions only).
conform::SymAutomaton to_sym_automaton(const Hypothesis& h);

/// Intern a string-event automaton into `ctx` as an explicit LTS: each
/// distinct event name becomes a field-less channel, states map 1:1.
Lts to_lts(Context& ctx, const conform::SymAutomaton& a);

/// to_lts wrapped into a process term (refine::lts_to_process); `name`
/// must be fresh in the Context.
ProcessRef to_process(Context& ctx, const conform::SymAutomaton& a,
                      const std::string& name);

/// Strong-bisimulation equivalence of two deterministic string-event
/// automata (every state accepting): minimise the disjoint union, compare
/// root blocks. For deterministic automata this coincides with language
/// equality, so it is exactly "the learner reproduced the spec".
bool strong_bisim_equivalent(const conform::SymAutomaton& a,
                             const conform::SymAutomaton& b);

/// The harness-testable projection of a model automaton — the fixpoint an
/// active learner driving the quiescent conformance harness can actually
/// converge to:
///   * drop edges that are neither concretizable stimuli nor observable
///     responses (internal sends never hit the bus observation);
///   * at states offering any response edge keep only response edges (the
///     settle-window discipline guarantees pending responses land before
///     the next stimulus can be injected, so stimulus edges there are not
///     drivable);
///   * restrict to states reachable from the root afterwards.
/// DESIGN.md §16 develops why learning converges to this and not to the
/// full model.
conform::SymAutomaton testable_projection(
    const conform::SymAutomaton& model,
    const std::function<bool(const std::string&)>& is_stimulus,
    const std::function<bool(const std::string&)>& is_response);

/// Strip self-loop edges labelled with `ignored` events (events the model
/// oracle deliberately has no word for, e.g. send.UpdApplyReqBad). Returns
/// the stripped automaton plus a losslessness flag: true when every
/// ignored-event edge was a self-loop. A non-self-loop ignored edge means
/// the target *reacts* to an event the spec ignores — unstrippable, and
/// exactly the signature of the DropGuard mutant — so callers must treat
/// lossless == false as "not equivalent", not strip and compare anyway.
struct StripResult {
  conform::SymAutomaton automaton;
  bool lossless = true;
};
StripResult strip_ignored_self_loops(const conform::SymAutomaton& a,
                                     const std::set<std::string>& ignored);

}  // namespace ecucsp::learn
