// Membership oracles for active automata learning.
//
// The learner (learn/learner.hpp) asks one kind of question: "is this word
// a trace of the target?". Trace languages are prefix-closed, so the
// natural primitive is sharper than a boolean — accepted_prefix(w) returns
// how many events of w the target accepts from the front, which answers
// membership for *every* prefix of w at once. For the simulated-ECU oracle
// this collapses what would be |w| harness runs into one: the harness
// observation obs(skeleton(w)) decides w and all its prefixes (the prefix
// lemma documented in DESIGN.md §16).
//
// Determinism contract: answers are pure functions of (target, word) — the
// ECU oracle derives each run's environment seed from (base seed, stimulus
// skeleton) alone, so the same question always gets the same answer, in
// any batch, at any parallelism. prefetch() only warms caches; counters
// are advanced by the sequential caller, never by worker threads.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "capl/ast.hpp"
#include "conform/automaton.hpp"
#include "conform/harness.hpp"

namespace ecucsp::verify {
class VerifyScheduler;
}

namespace ecucsp::learn {

/// A word over the learning alphabet: abstract conform-layer event names
/// ("send.SwInventoryReq", "rec.UpdReport", ...).
using Word = std::vector<std::string>;

class MembershipOracle {
 public:
  virtual ~MembershipOracle() = default;

  /// The learning alphabet Sigma, sorted. Every queried word is over it.
  virtual const std::vector<std::string>& alphabet() const = 0;

  /// Length of the longest prefix of `word` that is a trace of the target.
  /// Prefix closure makes this the complete answer sheet for word and all
  /// its prefixes: the length-k prefix is a trace iff k <= the result.
  std::size_t accepted_prefix(const Word& word) {
    ++queries_;
    return lookup(word);
  }

  /// Is `word` itself a trace of the target?
  bool member(const Word& word) {
    return accepted_prefix(word) == word.size();
  }

  /// Resolve a batch of future questions in parallel so that subsequent
  /// accepted_prefix / member calls answer from cache. Purely a warm-up:
  /// answers and counters are unchanged by whether (or how) it ran.
  virtual void prefetch(const std::vector<Word>& /*words*/) {}

  /// Questions asked (accepted_prefix calls, member included). Counted on
  /// the caller's thread only, so deterministic at any parallelism.
  std::uint64_t queries() const { return queries_; }

  /// Distinct target executions performed (harness runs / automaton
  /// walks). Deterministic because the *set* of executions is a function
  /// of the question sequence, not of scheduling.
  std::uint64_t evaluations() const { return evaluations_; }

 protected:
  /// Cached answer for `word`; derived classes own the cache geometry.
  virtual std::size_t lookup(const Word& word) = 0;

  std::uint64_t queries_ = 0;
  std::uint64_t evaluations_ = 0;
};

/// White-box oracle over an explicit automaton: the target language is the
/// walk language of `automaton` (every state accepting, a missing edge
/// refuses). Used by the differential battery to learn the seeded
/// requirement/model automata back and compare hypotheses for
/// strong-bisimulation equivalence — the ground-truth half of the
/// Learn–Check–Test loop's correctness argument.
class AutomatonOracle final : public MembershipOracle {
 public:
  /// `alphabet` must be sorted; words are judged by walking `automaton`
  /// (which the oracle copies, so the source may die).
  AutomatonOracle(conform::SymAutomaton automaton,
                  std::vector<std::string> alphabet);

  const std::vector<std::string>& alphabet() const override {
    return alphabet_;
  }

 protected:
  std::size_t lookup(const Word& word) override;

 private:
  conform::SymAutomaton automaton_;
  std::vector<std::string> alphabet_;
  std::map<Word, std::size_t> cache_;
};

/// Black-box oracle over the simulated ECU, driven through the conformance
/// harness: member(w) iff w is a prefix of obs(skeleton(w)), where
/// skeleton(w) keeps exactly the stimulus events the codec can concretize
/// and obs is the abstracted bus observation of injecting them under the
/// quiescence discipline (one settle window apart). The run cache is keyed
/// on the skeleton: planned response events consume neither time nor rng
/// in the harness, so every word with the same skeleton shares one
/// observation — and by the prefix lemma that observation also answers all
/// of the word's prefixes.
class EcuMembershipOracle final : public MembershipOracle {
 public:
  struct Options {
    /// Base seed; each run's environment seed is derived from it and the
    /// skeleton, so runs are reproducible and order-independent.
    std::uint64_t seed = 1;
    std::uint64_t settle_us = 5'000;
    std::uint64_t deadline_us = 2'000'000;
  };

  /// `ecu`, `db`, `codec` must outlive the oracle. `alphabet` must be
  /// sorted. `sched` (optional, non-owning) parallelises prefetch().
  EcuMembershipOracle(const capl::CaplProgram& ecu,
                      const can::DbcDatabase& db,
                      const conform::FrameCodec& codec,
                      std::vector<std::string> alphabet, Options opt,
                      verify::VerifyScheduler* sched = nullptr);

  const std::vector<std::string>& alphabet() const override {
    return alphabet_;
  }

  /// Run every not-yet-cached distinct skeleton of `words` through the
  /// harness, in parallel when a scheduler was given. Results land in the
  /// run cache in sorted skeleton order, so cache contents (and the
  /// evaluation counter) are identical at any jobs x threads.
  void prefetch(const std::vector<Word>& words) override;

  /// The stimulus skeleton of a word: its concretizable events, in order.
  Word skeleton(const Word& word) const;

  /// Environment seed for one skeleton's harness run — a pure function of
  /// (base seed, skeleton).
  std::uint64_t run_seed(const Word& skeleton) const;

 protected:
  std::size_t lookup(const Word& word) override;

 private:
  const Word& observation(const Word& skel);  // run + cache on miss
  Word execute(const Word& skel) const;       // one harness run

  const capl::CaplProgram& ecu_;
  const can::DbcDatabase& db_;
  const conform::FrameCodec& codec_;
  std::vector<std::string> alphabet_;
  Options opt_;
  verify::VerifyScheduler* sched_;
  std::map<Word, Word> runs_;  // skeleton -> observation
};

}  // namespace ecucsp::learn
