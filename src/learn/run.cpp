#include "learn/run.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>
#include <utility>

#include "can/dbc.hpp"
#include "capl/parser.hpp"
#include "conform/generate.hpp"
#include "conform/harness.hpp"
#include "conform/requirements.hpp"
#include "core/cancel.hpp"
#include "core/context.hpp"
#include "learn/cache.hpp"
#include "learn/compile.hpp"
#include "learn/equiv.hpp"
#include "learn/oracle.hpp"
#include "ota/ota.hpp"
#include "refine/check.hpp"
#include "store/cache.hpp"
#include "store/object_store.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::learn {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string_list(const std::vector<std::string>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(xs[i]) + "\"";
  }
  return out + "]";
}

std::vector<std::string> learning_alphabet(
    const conform::FrameCodec& codec,
    const std::vector<conform::TraceOracle>& requirements) {
  // Stimuli the harness can inject, plus responses the requirement oracles
  // observe. Responses come from the oracles (not from the codec's frame
  // map) because "observable" means "some requirement constrains it".
  std::set<std::string> sigma;
  for (const auto& [event, frame] : codec.stimulus_frames) sigma.insert(event);
  for (const conform::TraceOracle& r : requirements) {
    for (const std::string& e : r.alphabet) {
      if (e.starts_with(codec.rx_channel + ".")) sigma.insert(e);
    }
  }
  return {sigma.begin(), sigma.end()};
}

/// Store-harvested abstract attack traces, bridged into the learning
/// alphabet. Needs the hand-built OTA model's Context: stored verdicts are
/// Context-bound, and scan skips anything whose channels the given Context
/// does not know.
std::vector<Word> harvest_extra_words(const std::string& cache_dir) {
  auto model = ota::build_ota_model();
  const std::map<std::string, std::string> bridge = {
      {"send.reqSw.genuine", "send.SwInventoryReq"},
      {"send.reqApp.genuine", "send.UpdApplyReq"},
      {"send.reqApp.forged", "send.UpdApplyReqBad"},
      {"rec.rptSw.genuine", "rec.SwReport"},
      {"rec.rptUpd.genuine", "rec.UpdReport"},
  };
  const std::set<std::string> drop = {"install"};
  std::vector<Word> out;
  std::set<Word> seen;
  for (const auto& tr :
       store::scan_stored_counterexamples(cache_dir, model->ctx)) {
    auto tc = conform::bridge_counterexample(tr, bridge, drop, "harvested");
    if (!tc) continue;
    if (!seen.insert(tc->events).second) continue;
    out.push_back(tc->events);
  }
  return out;
}

std::vector<std::string> counterexample_events(const Context& ctx,
                                               const Counterexample& cex) {
  std::vector<std::string> out;
  out.reserve(cex.trace.size() + 1);
  for (EventId e : cex.trace) out.push_back(ctx.event_name(e));
  if (cex.kind == Counterexample::Kind::TraceViolation ||
      cex.kind == Counterexample::Kind::Nondeterminism) {
    out.push_back(ctx.event_name(cex.event));
  }
  return out;
}

}  // namespace

std::vector<std::string> ota_learning_alphabet() {
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const conform::FrameCodec codec = conform::ota_codec(db);
  return learning_alphabet(codec, conform::ota_requirement_oracles());
}

LearnReport run_ota_learn(const LearnRunOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  LearnReport rep;
  rep.seed = opt.seed;
  rep.max_rounds = opt.rounds;
  rep.eq_tests = opt.eq_tests;
  rep.max_len = opt.max_len;

  // 1. The target: the simulated ECU, faithful or a seeded mutant.
  const can::DbcDatabase db = can::parse_dbc(std::string(ota::ota_dbc_text()));
  const conform::FrameCodec codec = conform::ota_codec(db);
  capl::CaplProgram ecu = capl::parse_capl(std::string(ota::ecu_capl_source()));
  // The learned-model cache key needs the post-mutation program identity;
  // mutation rewrites the AST, not the text, so the key is source text plus
  // the mutation's deterministic fingerprint.
  std::string key_source(ota::ecu_capl_source());
  if (opt.mutate) {
    const conform::MutationInfo m = conform::mutate_program(ecu, *opt.mutate);
    rep.mutation = m;
    rep.mutation_seed = *opt.mutate;
    key_source += "\n#mutated:" + std::to_string(*opt.mutate) + ":" +
                  m.handler + ":" + m.description;
  }

  const std::vector<conform::TraceOracle> requirements =
      conform::ota_requirement_oracles();
  const std::vector<std::string> sigma = learning_alphabet(codec, requirements);

  // 2. Membership oracle, batching through the scheduler.
  verify::SchedulerOptions sched_opt;
  sched_opt.jobs = opt.jobs;
  sched_opt.threads = opt.threads;
  verify::VerifyScheduler sched(sched_opt);
  EcuMembershipOracle::Options ora_opt;
  ora_opt.seed = opt.seed;
  EcuMembershipOracle oracle(ecu, db, codec, sigma, ora_opt, &sched);

  // 3. Learned-model cache lookup (pure function of the key, so a hit is
  // exactly what learning would rebuild).
  std::optional<store::ObjectStore> model_store;
  LearnCacheKey key;
  key.ecu_source = key_source;
  key.seed = opt.seed;
  key.rounds = opt.rounds;
  key.eq_tests = opt.eq_tests;
  key.max_len = opt.max_len;
  key.alphabet = sigma;
  if (!opt.cache_dir.empty()) {
    model_store.emplace(std::filesystem::path(opt.cache_dir) /
                        "learned-models");
    if (auto cached = load_hypothesis(*model_store, key)) {
      rep.hypothesis = std::move(*cached);
      rep.from_cache = true;
      rep.converged = true;  // only converged hypotheses are stored
    }
  }

  // 4. The learning loop: hypothesise, search for a counterexample,
  // refine until the word stops distinguishing, repeat until a whole
  // equivalence round finds nothing.
  if (!rep.from_cache) {
    std::vector<Word> extra;
    if (!opt.cache_dir.empty()) extra = harvest_extra_words(opt.cache_dir);

    TreeLearner learner(oracle);
    Hypothesis hyp = learner.hypothesis();
    for (std::size_t round = 0; round < opt.rounds; ++round) {
      EquivOptions eq;
      eq.seed = opt.seed;
      eq.round = round;
      eq.tests = opt.eq_tests;
      eq.max_len = opt.max_len;
      eq.extra = extra;
      const std::optional<Word> cex =
          approximate_counterexample(oracle, hyp, eq);
      ++rep.rounds_used;
      if (!cex) {
        rep.converged = true;
        break;
      }
      // One counterexample can expose several missing states; refine()
      // returning false is the signal that this word is now classified
      // correctly.
      while (learner.refine(*cex)) {
      }
      hyp = learner.hypothesis();
    }
    rep.hypothesis = std::move(hyp);
    rep.splits = learner.splits();
    if (model_store && rep.converged) {
      store_hypothesis(*model_store, key, rep.hypothesis);
    }
  }
  rep.membership_queries = oracle.queries();
  rep.harness_runs = oracle.evaluations();

  // 5. The Check phase: R01–R05 against the *learned* model. One Context
  // holds the hypothesis process and every requirement spec; the
  // verification cache (when a directory was given) serves repeat verdicts.
  std::optional<store::VerificationCache> vcache;
  std::optional<ScopedCheckCache> scoped;
  if (!opt.cache_dir.empty()) {
    vcache.emplace(std::filesystem::path(opt.cache_dir));
    scoped.emplace(&*vcache);
  }

  Context ctx;
  const conform::SymAutomaton hyp_auto = to_sym_automaton(rep.hypothesis);
  const ProcessRef learned = to_process(ctx, hyp_auto, "LEARNED");

  bool any_fail = false;
  for (const conform::TraceOracle& r : requirements) {
    LearnCheckReport c;
    c.name = r.name;
    if (r.name == "R01") {
      // R01 constrains when the *tester* (the VMG role) may send requests;
      // the learner plays that role itself, so its own stimulus schedule is
      // not ECU behaviour to check. Same skip as the conformance suite's
      // dialogue_only flag.
      c.verdict = "SKIP";
      c.reason = "constrains tester stimuli, not ECU reactions";
      rep.checks.push_back(std::move(c));
      continue;
    }
    // Spec: the requirement automaton as a process. Impl: the learned
    // model restricted to the requirement's alphabet by hiding everything
    // else (standard alphabetised trace refinement).
    const ProcessRef spec = to_process(ctx, r.automaton, "SPEC_" + r.name);
    std::vector<EventId> hide;
    for (const std::string& e : rep.hypothesis.alphabet) {
      if (!r.alphabet.contains(e)) hide.push_back(ctx.event(ctx.channel(e)));
    }
    const ProcessRef impl = ctx.hide(learned, EventSet(hide));
    CancelToken token;
    if (opt.timeout) token.set_timeout(*opt.timeout);
    try {
      const CheckResult res =
          check_refinement(ctx, spec, impl, Model::Traces, opt.max_states,
                           &token, opt.threads);
      if (res.passed) {
        c.verdict = "PASS";
      } else {
        c.verdict = "FAIL";
        any_fail = true;
        if (res.counterexample) {
          c.reason = res.counterexample->describe(ctx);
          c.counterexample = counterexample_events(ctx, *res.counterexample);
          // Close the loop: the refinement counterexample must replay to a
          // rejection on the requirement's own trace oracle.
          const conform::OracleVerdict v = r.judge(c.counterexample);
          c.replay = v.accepted
                         ? "accepted (oracle/refinement disagree)"
                         : "rejected@" + std::to_string(v.divergence_index);
        } else {
          c.reason = "refinement failed without counterexample";
        }
      }
    } catch (const CheckCancelled&) {
      c.verdict = "TIMEOUT";
      any_fail = true;
    }
    rep.checks.push_back(std::move(c));
  }

  rep.ok = rep.converged && !any_fail;
  rep.wall = std::chrono::steady_clock::now() - t0;
  return rep;
}

std::string render_text(const LearnReport& r) {
  std::ostringstream out;
  out << "learn seed " << r.seed << ": "
      << (r.converged ? "converged" : "NOT converged") << " after "
      << r.rounds_used << "/" << r.max_rounds << " rounds ("
      << r.membership_queries << " membership queries, " << r.harness_runs
      << " harness runs, " << r.splits << " splits"
      << (r.from_cache ? ", from cache" : "") << ")\n";
  out << "hypothesis: " << r.hypothesis.state_count() << " states, "
      << r.hypothesis.transition_count() << " transitions over "
      << r.hypothesis.alphabet.size() << " events\n";
  if (r.mutation) {
    out << "mutation: " << r.mutation->description << " [ECU:"
        << r.mutation->line << ":" << r.mutation->column << " ("
        << r.mutation->handler << ")]\n";
  }
  for (const LearnCheckReport& c : r.checks) {
    out << "  [" << c.verdict << "] " << c.name;
    if (c.verdict == "SKIP") {
      out << " -- " << c.reason;
    } else if (c.verdict == "FAIL") {
      out << " -- " << c.reason;
      if (!c.counterexample.empty()) {
        out << "\n      trace:";
        for (const std::string& e : c.counterexample) out << " " << e;
        out << "\n      oracle replay: " << c.replay;
      }
    }
    out << "\n";
  }
  out << (r.ok ? "SECURE"
               : (r.converged ? "VIOLATIONS" : "UNCONVERGED"))
      << ": learned model "
      << (r.converged ? "is equivalence-stable" : "may be incomplete") << "\n";
  return out.str();
}

std::string render_json(const LearnReport& r, bool with_timing) {
  std::ostringstream out;
  out << "{\"learn_format\":1";
  out << ",\"seed\":" << r.seed;
  out << ",\"ok\":" << (r.ok ? "true" : "false");
  out << ",\"converged\":" << (r.converged ? "true" : "false");
  out << ",\"from_cache\":" << (r.from_cache ? "true" : "false");
  out << ",\"rounds\":{\"used\":" << r.rounds_used << ",\"max\":"
      << r.max_rounds << "}";
  out << ",\"eq_tests\":" << r.eq_tests;
  out << ",\"max_len\":" << r.max_len;
  out << ",\"queries\":{\"membership\":" << r.membership_queries
      << ",\"harness_runs\":" << r.harness_runs << ",\"splits\":" << r.splits
      << "}";
  out << ",\"hypothesis\":{\"states\":" << r.hypothesis.state_count()
      << ",\"transitions\":" << r.hypothesis.transition_count()
      << ",\"alphabet\":" << json_string_list(r.hypothesis.alphabet) << "}";
  if (r.mutation) {
    out << ",\"mutation\":{\"seed\":" << *r.mutation_seed
        << ",\"description\":\"" << json_escape(r.mutation->description)
        << "\",\"span\":\"ECU:" << r.mutation->line << ":"
        << r.mutation->column << " (" << json_escape(r.mutation->handler)
        << ")\"}";
  } else {
    out << ",\"mutation\":null";
  }
  out << ",\"checks\":[";
  for (std::size_t i = 0; i < r.checks.size(); ++i) {
    const LearnCheckReport& c = r.checks[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << json_escape(c.name) << "\"";
    out << ",\"verdict\":\"" << json_escape(c.verdict) << "\"";
    if (!c.reason.empty()) {
      out << ",\"reason\":\"" << json_escape(c.reason) << "\"";
    }
    if (c.verdict == "FAIL") {
      out << ",\"counterexample\":" << json_string_list(c.counterexample);
      out << ",\"replay\":\"" << json_escape(c.replay) << "\"";
    }
    out << "}";
  }
  out << "]";
  if (with_timing) {
    out << ",\"wall_ms\":"
        << std::chrono::duration<double, std::milli>(r.wall).count();
  }
  out << "}";
  return out.str();
}

}  // namespace ecucsp::learn
