// Active automata learning: a Kearns–Vazirani discrimination-tree learner
// with TTT-style (Rivest–Schapire) counterexample decomposition, shaped for
// prefix-closed trace languages.
//
// The classic observation-table L* pays |S|x|E| membership queries per
// refinement; the discrimination tree asks only the queries on the sift
// path of each word. Prefix closure buys two structural simplifications:
//
//   * the tree root always discriminates with the empty suffix, and its
//     reject side is a single *dead* leaf — a non-member word has no
//     member extensions, so all rejected words are one equivalence class;
//   * every live leaf's access word is a member (it sifted to the accept
//     side of the root), so every hypothesis state is accepting and the
//     hypothesis language is exactly the set of words whose run stays
//     live. Membership disagreement therefore always shows up as a
//     divergence in *how far* a word runs, which equiv.cpp exploits.
//
// Determinism: the learner issues membership queries in a fixed order
// driven only by tree shape and the (sorted) alphabet; batches are
// prefetched through the oracle and then folded sequentially. Two learners
// over equal-answer oracles perform identical query sequences and build
// identical hypotheses — the property the jobs x threads byte-diff tests
// pin end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "learn/oracle.hpp"

namespace ecucsp::learn {

/// A deterministic, prefix-closed hypothesis: states are live leaves of
/// the discrimination tree (all accepting), transitions either move to a
/// live state or fall off the automaton (DEAD = the word stops being a
/// trace). The language is the set of words with a complete live run.
struct Hypothesis {
  static constexpr std::uint32_t DEAD = 0xffffffffu;

  /// Sorted learning alphabet; succ columns index into it.
  std::vector<std::string> alphabet;
  std::uint32_t root = 0;
  /// succ[state][sym] = target state, or DEAD.
  std::vector<std::vector<std::uint32_t>> succ;
  /// Access word of each state (the leaf's access string; access[root]
  /// is empty).
  std::vector<Word> access;

  std::size_t state_count() const { return succ.size(); }
  std::size_t transition_count() const;

  /// Number of events of `word` the hypothesis runs through live — the
  /// hypothesis-side accepted_prefix. member iff == word.size().
  std::size_t accepted_prefix(const Word& word) const;
  bool member(const Word& word) const {
    return accepted_prefix(word) == word.size();
  }
};

/// The discrimination-tree learner. Drive it with:
///   TreeLearner l(oracle);
///   loop: H = l.hypothesis();  find counterexample w;  l.refine(w);
/// refine() returns false when w is not actually a counterexample for the
/// current hypothesis (the loop's convergence signal for that word).
class TreeLearner {
 public:
  explicit TreeLearner(MembershipOracle& oracle);

  /// Build the current hypothesis: states in leaf-creation order, every
  /// transition resolved by (batched) sifting. Pure given the tree, so
  /// calling it repeatedly is idempotent.
  Hypothesis hypothesis();

  /// Process one counterexample with Rivest–Schapire decomposition: find
  /// the first index where the oracle's answers diverge from the
  /// hypothesis's predictions and split the corresponding leaf with the
  /// remaining suffix as discriminator. Adds exactly one state per true
  /// counterexample; returns false (and changes nothing) if `word` is
  /// classified identically by oracle and current hypothesis.
  bool refine(const Word& word);

  /// Live states of the current tree.
  std::size_t states() const { return leaves_.size(); }
  /// Successful refine() calls (= states added beyond the initial one).
  std::uint64_t splits() const { return splits_; }

 private:
  struct Node {
    bool leaf = true;
    // internal
    Word suffix;
    std::int32_t accept = -1;
    std::int32_t reject = -1;
    // leaf
    Word access;
    bool dead = false;
  };

  /// Sift every word to its leaf, breadth-batched: at each tree depth the
  /// pending membership questions of *all* words are prefetched together,
  /// then resolved sequentially — parallel answers, deterministic fold.
  std::vector<std::int32_t> sift_batch(const std::vector<Word>& words);

  std::int32_t root_ = 0;
  std::int32_t dead_leaf_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::int32_t> leaves_;  // live leaves, creation order
  MembershipOracle& oracle_;
  std::uint64_t splits_ = 0;
};

}  // namespace ecucsp::learn
