// Learned-model caching: content-addressed persistence of hypotheses.
//
// Learning a model costs hundreds of harness runs; the result is a pure
// function of (ECU source, mutation, learning parameters, seed). So the
// hypothesis is cached in the same on-disk ObjectStore the verification
// cache uses, keyed on exactly those inputs, sealed in the store's
// versioned envelope under ArtifactKind::LearnedModel. Unlike LTS/verdict
// artifacts the payload is *not* Context-bound — a hypothesis is plain
// string-event data — so encode/decode live here rather than in
// store/serialize.cpp, and only the envelope (magic, format version, kind
// byte, digest seal) is borrowed from seal()/unseal().
#pragma once

#include <optional>
#include <string_view>

#include "learn/learner.hpp"
#include "store/digest.hpp"
#include "store/object_store.hpp"

namespace ecucsp::learn {

/// Everything the learned model is a function of. The store format version
/// participates too, so format bumps invalidate keys instead of decoding
/// stale blobs.
struct LearnCacheKey {
  std::string_view ecu_source;      // post-mutation CAPL text
  std::uint64_t seed = 1;
  std::size_t rounds = 0;
  std::size_t eq_tests = 0;
  std::size_t max_len = 0;
  std::vector<std::string> alphabet;

  store::Digest digest() const;
};

/// Sealed LearnedModel envelope for `h`.
std::vector<std::uint8_t> encode_hypothesis(const Hypothesis& h);

/// Decode a sealed LearnedModel envelope; nullopt on any mismatch
/// (foreign format, truncation, corrupted payload) — a cache miss, never
/// an error.
std::optional<Hypothesis> decode_hypothesis(
    std::span<const std::uint8_t> blob);

/// Store / load through an ObjectStore directory.
void store_hypothesis(store::ObjectStore& os, const LearnCacheKey& key,
                      const Hypothesis& h);
std::optional<Hypothesis> load_hypothesis(store::ObjectStore& os,
                                          const LearnCacheKey& key);

}  // namespace ecucsp::learn
