// The OTA Learn–Check–Test pipeline: learn a model of the (possibly
// mutated) simulated ECU through the conformance harness, then run the
// R01–R05 requirement checks against the *learned* model — no CAPL source
// needed on the checking side, which is the paper's missing scenario class
// (third-party / binary-only ECUs).
//
// Determinism contract (DESIGN.md §16): the report is a pure function of
// (seed, rounds, eq_tests, max_len, mutation, ECU source). Membership
// queries are batched through the scheduler but answers are folded
// sequentially, per-run harness seeds derive from (seed, skeleton) alone,
// and the JSON deliberately carries neither jobs/threads nor wall time
// (unless with_timing) — so reports are byte-identical at any
// --jobs x --threads, which CI diffs literally.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "conform/mutate.hpp"
#include "learn/learner.hpp"

namespace ecucsp::learn {

struct LearnRunOptions {
  std::uint64_t seed = 1;
  unsigned jobs = 0;     // scheduler workers; 0 = hardware
  unsigned threads = 1;  // in-check threads (jobs x threads clamped)
  /// Maximum equivalence rounds before giving up unconverged.
  std::size_t rounds = 16;
  /// Per-round equivalence tests (random walks and Sigma-words, each).
  std::size_t eq_tests = 64;
  std::size_t max_len = 12;
  /// Mutate the ECU CAPL with this seed before learning (conform/mutate).
  std::optional<std::uint64_t> mutate;
  /// On-disk store: learned-model cache + verification cache + harvested
  /// counterexamples. Empty = no persistence.
  std::string cache_dir;
  std::optional<std::chrono::milliseconds> timeout;  // per refinement check
  std::size_t max_states = 1u << 20;
};

struct LearnCheckReport {
  std::string name;                    // R01..R05
  std::string verdict;                 // "PASS" | "FAIL" | "SKIP"
  std::string reason;                  // SKIP rationale / FAIL summary
  std::vector<std::string> counterexample;  // FAIL: impl trace, R alphabet
  /// FAIL only: the counterexample replayed through the requirement's
  /// conform::TraceOracle — "rejected@<index>" when the oracle confirms
  /// the violation (it always should; learn_mutant_test pins this).
  std::string replay;
};

struct LearnReport {
  bool ok = false;         // converged and no non-SKIP check failed
  bool converged = false;  // equivalence approximation found no cex
  std::uint64_t seed = 0;
  std::size_t rounds_used = 0;  // hypotheses built (>= 1)
  std::size_t max_rounds = 0;
  std::size_t eq_tests = 0;
  std::size_t max_len = 0;
  std::uint64_t membership_queries = 0;
  std::uint64_t harness_runs = 0;
  std::uint64_t splits = 0;
  Hypothesis hypothesis;
  std::optional<conform::MutationInfo> mutation;
  std::optional<std::uint64_t> mutation_seed;
  std::vector<LearnCheckReport> checks;
  /// Hypothesis served from the learned-model store instead of learning.
  bool from_cache = false;
  std::chrono::nanoseconds wall{0};
};

/// Learn the OTA ECU (mutated per options) and run the requirement battery
/// on the learned model.
LearnReport run_ota_learn(const LearnRunOptions& opt);

/// The learning alphabet run_ota_learn uses: the codec's concretizable
/// stimuli plus the requirement oracles' observable responses, sorted.
std::vector<std::string> ota_learning_alphabet();

std::string render_text(const LearnReport& rep);
/// learn_format:1. Deterministic: no jobs/threads, and wall time only
/// when `with_timing`.
std::string render_json(const LearnReport& rep, bool with_timing = false);

}  // namespace ecucsp::learn
