// Equivalence queries for the learning loop.
//
// A true equivalence oracle does not exist for a black box; this layer
// offers the two approximations the Learn–Check–Test loop runs on:
//
//   * approximate_counterexample — conformance-suite testing against the
//     current hypothesis: seeded random walks and a cover suite over the
//     hypothesis automaton (probing for traces the target rejects), seeded
//     random Sigma-words (probing beyond the hypothesis language), plus
//     caller-supplied words such as store-harvested attack counterexamples.
//     Deterministic per (seed, round); the returned counterexample is the
//     shortest mismatching prefix of the first mismatching word in a fixed
//     evaluation order, so hypotheses evolve identically at any
//     parallelism.
//   * exact_counterexample — a product-automaton BFS against a known
//     target automaton (shortest mismatch, lexicographically smallest
//     among shortest). Only available white-box; the differential battery
//     uses it to drive learning to *guaranteed* convergence and then
//     cross-checks the approximate path against it.
#pragma once

#include <optional>
#include <vector>

#include "conform/automaton.hpp"
#include "learn/learner.hpp"
#include "learn/oracle.hpp"

namespace ecucsp::learn {

struct EquivOptions {
  std::uint64_t seed = 1;
  /// Mixed into every suite seed so each equivalence round explores fresh
  /// words while staying reproducible.
  std::size_t round = 0;
  /// Random-walk tests over the hypothesis and random Sigma-words, each.
  std::size_t tests = 64;
  std::size_t max_len = 12;
  /// Extra words tested first (store-harvested counterexamples, bridged
  /// into the learning alphabet).
  std::vector<Word> extra;
};

/// Search for a word on which oracle and hypothesis disagree; nullopt when
/// the whole suite agrees (the loop's convergence signal). Prefetches the
/// entire suite through the oracle before judging, so membership traffic
/// is batched while the verdict fold stays sequential.
std::optional<Word> approximate_counterexample(MembershipOracle& oracle,
                                               const Hypothesis& hypothesis,
                                               const EquivOptions& opt);

/// Shortest word accepted by exactly one of target / hypothesis (walk
/// semantics, every state accepting), lexicographically smallest among the
/// shortest; nullopt when the automata are language-equivalent. `alphabet`
/// must be sorted.
std::optional<Word> exact_counterexample(
    const conform::SymAutomaton& target, const conform::SymAutomaton& hyp,
    const std::vector<std::string>& alphabet);

}  // namespace ecucsp::learn
