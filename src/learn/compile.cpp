#include "learn/compile.hpp"

#include <deque>

#include "refine/minimize.hpp"

namespace ecucsp::learn {

conform::SymAutomaton to_sym_automaton(const Hypothesis& h) {
  conform::SymAutomaton a;
  a.root = h.root;
  for (std::uint32_t s = 0; s < h.state_count(); ++s) {
    for (std::size_t k = 0; k < h.alphabet.size(); ++k) {
      if (h.succ[s][k] != Hypothesis::DEAD) {
        a.add_edge(s, h.alphabet[k], h.succ[s][k]);
      }
    }
  }
  // A hypothesis may have states with no live outgoing transition; make
  // sure the automaton still carries every state.
  if (a.succ.size() < h.state_count()) a.succ.resize(h.state_count());
  a.sort_edges();
  return a;
}

Lts to_lts(Context& ctx, const conform::SymAutomaton& a) {
  Lts lts;
  lts.root = a.root;
  lts.succ.resize(a.succ.size());
  lts.term_of.assign(a.succ.size(), ctx.stop());
  lts.omega.assign(a.succ.size(), false);
  for (std::uint32_t s = 0; s < a.succ.size(); ++s) {
    for (const conform::SymEdge& e : a.succ[s]) {
      lts.succ[s].push_back(
          LtsTransition{ctx.event(ctx.channel(e.event)), e.target});
    }
  }
  return lts;
}

ProcessRef to_process(Context& ctx, const conform::SymAutomaton& a,
                      const std::string& name) {
  return lts_to_process(ctx, to_lts(ctx, a), name);
}

bool strong_bisim_equivalent(const conform::SymAutomaton& a,
                             const conform::SymAutomaton& b) {
  // Disjoint union in one fresh Context (shared event interning, shifted
  // state ids for b), then one partition refinement over ALL states —
  // minimize_strong partitions the whole machine, reachable or not, so
  // both roots land in blocks of the same partition.
  Context ctx;
  Lts u = to_lts(ctx, a);
  const Lts lb = to_lts(ctx, b);
  const auto shift = static_cast<StateId>(u.succ.size());
  u.succ.reserve(u.succ.size() + lb.succ.size());
  for (const auto& row : lb.succ) {
    u.succ.push_back(row);
    for (LtsTransition& t : u.succ.back()) t.target += shift;
    u.term_of.push_back(ctx.stop());
    u.omega.push_back(false);
  }
  const MinimizeResult m = minimize_strong(u);
  return m.block_of[a.root] == m.block_of[shift + b.root];
}

conform::SymAutomaton testable_projection(
    const conform::SymAutomaton& model,
    const std::function<bool(const std::string&)>& is_stimulus,
    const std::function<bool(const std::string&)>& is_response) {
  // Pass 1: per-state edge filter.
  std::vector<std::vector<conform::SymEdge>> kept(model.succ.size());
  for (std::uint32_t s = 0; s < model.succ.size(); ++s) {
    bool has_response = false;
    for (const conform::SymEdge& e : model.succ[s]) {
      if (is_response(e.event)) has_response = true;
    }
    for (const conform::SymEdge& e : model.succ[s]) {
      if (is_response(e.event)) {
        kept[s].push_back(e);
      } else if (!has_response && is_stimulus(e.event)) {
        // Stimulus edges survive only at quiescent states: with a response
        // pending, the settle discipline delivers it before any injection
        // can land, so the model's overtaking stimulus edges there are
        // unreachable for the harness.
        kept[s].push_back(e);
      }
    }
  }

  // Pass 2: reachable restriction from the root over the kept edges.
  std::vector<std::uint32_t> renumber(model.succ.size(),
                                      conform::SymAutomaton::NONE);
  std::vector<std::uint32_t> order;
  std::deque<std::uint32_t> queue{model.root};
  renumber[model.root] = 0;
  order.push_back(model.root);
  while (!queue.empty()) {
    const std::uint32_t s = queue.front();
    queue.pop_front();
    for (const conform::SymEdge& e : kept[s]) {
      if (renumber[e.target] != conform::SymAutomaton::NONE) continue;
      renumber[e.target] = static_cast<std::uint32_t>(order.size());
      order.push_back(e.target);
      queue.push_back(e.target);
    }
  }

  conform::SymAutomaton out;
  out.root = 0;
  out.succ.resize(order.size());
  for (std::uint32_t snew = 0; snew < order.size(); ++snew) {
    for (const conform::SymEdge& e : kept[order[snew]]) {
      out.add_edge(snew, e.event, renumber[e.target]);
    }
  }
  out.sort_edges();
  return out;
}

StripResult strip_ignored_self_loops(const conform::SymAutomaton& a,
                                     const std::set<std::string>& ignored) {
  StripResult out;
  out.automaton.root = a.root;
  out.automaton.succ.resize(a.succ.size());
  for (std::uint32_t s = 0; s < a.succ.size(); ++s) {
    for (const conform::SymEdge& e : a.succ[s]) {
      if (ignored.contains(e.event)) {
        if (e.target != s) out.lossless = false;
        continue;  // self-loops vanish; non-self-loops are flagged
      }
      out.automaton.add_edge(s, e.event, e.target);
    }
  }
  out.automaton.sort_edges();
  return out;
}

}  // namespace ecucsp::learn
