#include "learn/oracle.hpp"

#include <algorithm>

#include "store/digest.hpp"
#include "verify/scheduler.hpp"

namespace ecucsp::learn {

namespace {

/// Longest common prefix length of `word` with `obs`.
std::size_t common_prefix(const Word& word, const Word& obs) {
  const std::size_t n = std::min(word.size(), obs.size());
  std::size_t k = 0;
  while (k < n && word[k] == obs[k]) ++k;
  return k;
}

}  // namespace

AutomatonOracle::AutomatonOracle(conform::SymAutomaton automaton,
                                 std::vector<std::string> alphabet)
    : automaton_(std::move(automaton)), alphabet_(std::move(alphabet)) {}

std::size_t AutomatonOracle::lookup(const Word& word) {
  auto it = cache_.find(word);
  if (it != cache_.end()) return it->second;
  ++evaluations_;
  std::uint32_t node = automaton_.root;
  std::size_t k = 0;
  for (; k < word.size(); ++k) {
    const conform::SymEdge* edge = automaton_.edge(node, word[k]);
    if (edge == nullptr) break;
    node = edge->target;
  }
  cache_.emplace(word, k);
  return k;
}

EcuMembershipOracle::EcuMembershipOracle(const capl::CaplProgram& ecu,
                                         const can::DbcDatabase& db,
                                         const conform::FrameCodec& codec,
                                         std::vector<std::string> alphabet,
                                         Options opt,
                                         verify::VerifyScheduler* sched)
    : ecu_(ecu),
      db_(db),
      codec_(codec),
      alphabet_(std::move(alphabet)),
      opt_(opt),
      sched_(sched) {}

Word EcuMembershipOracle::skeleton(const Word& word) const {
  Word out;
  out.reserve(word.size());
  for (const std::string& e : word) {
    if (codec_.concretize(e).has_value()) out.push_back(e);
  }
  return out;
}

std::uint64_t EcuMembershipOracle::run_seed(const Word& skel) const {
  store::Hasher h;
  h.str("learn-membership-run");
  h.u64(opt_.seed);
  for (const std::string& e : skel) h.str(e);
  return h.finish().lo;
}

Word EcuMembershipOracle::execute(const Word& skel) const {
  conform::HarnessOptions h;
  h.seed = run_seed(skel);
  h.settle_us = opt_.settle_us;
  h.deadline_us = opt_.deadline_us;
  return conform::run_conformance_test(ecu_, /*vmg=*/nullptr, db_, codec_,
                                       skel, h)
      .observed;
}

const Word& EcuMembershipOracle::observation(const Word& skel) {
  auto it = runs_.find(skel);
  if (it == runs_.end()) {
    ++evaluations_;
    it = runs_.emplace(skel, execute(skel)).first;
  }
  return it->second;
}

std::size_t EcuMembershipOracle::lookup(const Word& word) {
  // By the prefix lemma, the observation of word's own skeleton decides
  // every prefix of word: the length-k prefix is a trace iff it is a
  // prefix of obs (injected stimuli appear in obs in injection order, and
  // a prefix's skeleton injections replay identically because planned
  // response events consume neither rng nor time in the harness).
  return common_prefix(word, observation(skeleton(word)));
}

void EcuMembershipOracle::prefetch(const std::vector<Word>& words) {
  // Distinct uncached skeletons, in sorted order: the set (and therefore
  // the evaluation counter and cache contents) is a pure function of the
  // question list, never of scheduling.
  std::vector<Word> missing;
  for (const Word& w : words) {
    Word skel = skeleton(w);
    if (!runs_.contains(skel)) missing.push_back(std::move(skel));
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  if (missing.empty()) return;

  std::vector<Word> obs(missing.size());
  if (sched_ != nullptr && missing.size() > 1) {
    // One custom task per run, each writing its pre-allocated slot; the
    // scheduler's join publishes the writes (the conform suite pattern).
    std::vector<std::function<bool(CancelToken&)>> queries;
    queries.reserve(missing.size());
    for (std::size_t i = 0; i < missing.size(); ++i) {
      queries.emplace_back([this, &missing, &obs, i](CancelToken&) {
        obs[i] = execute(missing[i]);
        return true;
      });
    }
    verify::run_bool_batch(*sched_, queries, "learn-run");
  } else {
    for (std::size_t i = 0; i < missing.size(); ++i) {
      obs[i] = execute(missing[i]);
    }
  }
  for (std::size_t i = 0; i < missing.size(); ++i) {
    runs_.emplace(std::move(missing[i]), std::move(obs[i]));
  }
  evaluations_ += missing.size();
}

}  // namespace ecucsp::learn
