#include "learn/equiv.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "conform/generate.hpp"
#include "core/rng.hpp"
#include "learn/compile.hpp"

namespace ecucsp::learn {

namespace {

/// Sub-seed for one suite family of one round: pure (seed, round, tag).
std::uint64_t mix_seed(std::uint64_t seed, std::size_t round,
                       std::uint64_t tag) {
  return core::mix64(seed ^ (0x9e3779b97f4a7c15ULL * (round + 1)) ^ tag);
}

}  // namespace

std::optional<Word> approximate_counterexample(MembershipOracle& oracle,
                                               const Hypothesis& hypothesis,
                                               const EquivOptions& opt) {
  const std::vector<std::string>& sigma = oracle.alphabet();
  std::vector<Word> words;

  // 1. Caller-supplied words (store-harvested attack traces) first: a
  // counterexample that already broke a requirement is the highest-value
  // probe the loop has.
  for (const Word& w : opt.extra) words.push_back(w);

  // 2. Random walks + cover tour over the hypothesis automaton: words the
  // hypothesis claims are traces; the target must agree.
  const conform::SymAutomaton hyp_auto = to_sym_automaton(hypothesis);
  conform::GeneratorOptions gen;
  gen.seed = mix_seed(opt.seed, opt.round, 0x77a1ULL);
  gen.tests = opt.tests;
  gen.max_len = opt.max_len;
  for (const conform::TestCase& tc : generate_random(hyp_auto, gen)) {
    words.push_back(tc.events);
  }
  for (const conform::TestCase& tc : generate_cover(hyp_auto, gen)) {
    words.push_back(tc.events);
  }

  // 3. Random Sigma-words: unconstrained by the hypothesis, these probe
  // behaviour the hypothesis thinks is dead (and vice versa) — random
  // walks over the hypothesis alone can never leave its language.
  std::uint64_t rng = core::seed_state(mix_seed(opt.seed, opt.round, 0x5197ULL));
  for (std::size_t t = 0; t < opt.tests && !sigma.empty(); ++t) {
    Word w(1 + core::splitmix64(rng) % std::max<std::size_t>(opt.max_len, 1));
    for (std::string& e : w) {
      e = sigma[core::splitmix64(rng) % sigma.size()];
    }
    words.push_back(std::move(w));
  }

  // Batched answers, sequential verdict fold: the first mismatching word
  // in this fixed order decides, and its shortest mismatching prefix is
  // the counterexample (prefix closure: acceptance diverges first exactly
  // one event past the shorter accepted prefix).
  oracle.prefetch(words);
  for (const Word& w : words) {
    const std::size_t h_acc = hypothesis.accepted_prefix(w);
    const std::size_t l_acc = oracle.accepted_prefix(w);
    if (h_acc == l_acc) continue;
    const std::size_t cut = std::min(h_acc, l_acc) + 1;
    return Word(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(cut));
  }
  return std::nullopt;
}

std::optional<Word> exact_counterexample(
    const conform::SymAutomaton& target, const conform::SymAutomaton& hyp,
    const std::vector<std::string>& alphabet) {
  // BFS over the product of the two walk automata, each extended with an
  // implicit dead sink; a pair with exactly one dead side is a mismatch.
  // BFS layer = word length and symbols are scanned in sorted order, so
  // the first mismatch found is the shortest, lexicographically smallest
  // counterexample — fully deterministic.
  constexpr std::uint32_t kDead = 0xffffffffu;
  struct Item {
    std::uint32_t t, h;
    Word word;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> seen;
  std::deque<Item> queue{{target.root, hyp.root, {}}};
  seen[{target.root, hyp.root}] = true;
  while (!queue.empty()) {
    Item it = std::move(queue.front());
    queue.pop_front();
    for (const std::string& a : alphabet) {
      const conform::SymEdge* te =
          it.t == kDead ? nullptr : target.edge(it.t, a);
      const conform::SymEdge* he = it.h == kDead ? nullptr : hyp.edge(it.h, a);
      const std::uint32_t tn = te ? te->target : kDead;
      const std::uint32_t hn = he ? he->target : kDead;
      if ((tn == kDead) != (hn == kDead)) {
        Word w = it.word;
        w.push_back(a);
        return w;
      }
      if (tn == kDead) continue;  // both dead: no live extension either side
      if (seen.emplace(std::pair{tn, hn}, true).second) {
        Word w = it.word;
        w.push_back(a);
        queue.push_back({tn, hn, std::move(w)});
      }
    }
  }
  return std::nullopt;
}

}  // namespace ecucsp::learn
