#include "learn/cache.hpp"

#include "store/serialize.hpp"

namespace ecucsp::learn {

store::Digest LearnCacheKey::digest() const {
  store::Hasher h;
  h.str("learn-hypothesis");
  h.u32(store::kStoreFormatVersion);
  h.str(ecu_source);
  h.u64(seed);
  h.u64(rounds);
  h.u64(eq_tests);
  h.u64(max_len);
  h.u64(alphabet.size());
  for (const std::string& e : alphabet) h.str(e);
  return h.finish();
}

std::vector<std::uint8_t> encode_hypothesis(const Hypothesis& h) {
  store::ByteWriter w;
  w.uv(h.alphabet.size());
  for (const std::string& e : h.alphabet) w.str(e);
  w.uv(h.root);
  w.uv(h.state_count());
  for (const auto& row : h.succ) {
    for (std::uint32_t t : row) {
      // DEAD -> 0, state s -> s + 1: varint-friendly, no sentinel clash.
      w.uv(t == Hypothesis::DEAD ? 0 : static_cast<std::uint64_t>(t) + 1);
    }
  }
  for (const Word& a : h.access) {
    w.uv(a.size());
    for (const std::string& e : a) w.str(e);
  }
  return store::seal(store::ArtifactKind::LearnedModel, w.take());
}

std::optional<Hypothesis> decode_hypothesis(
    std::span<const std::uint8_t> blob) {
  try {
    store::ByteReader r(
        store::unseal(store::ArtifactKind::LearnedModel, blob));
    Hypothesis h;
    const std::uint64_t k = r.uv();
    h.alphabet.reserve(k);
    for (std::uint64_t i = 0; i < k; ++i) h.alphabet.push_back(r.str());
    h.root = static_cast<std::uint32_t>(r.uv());
    const std::uint64_t n = r.uv();
    if (h.root >= n && n > 0) return std::nullopt;
    h.succ.assign(n, std::vector<std::uint32_t>(k, Hypothesis::DEAD));
    for (std::uint64_t s = 0; s < n; ++s) {
      for (std::uint64_t a = 0; a < k; ++a) {
        const std::uint64_t t = r.uv();
        if (t == 0) continue;
        if (t > n) return std::nullopt;
        h.succ[s][a] = static_cast<std::uint32_t>(t - 1);
      }
    }
    h.access.resize(n);
    for (std::uint64_t s = 0; s < n; ++s) {
      const std::uint64_t len = r.uv();
      h.access[s].reserve(len);
      for (std::uint64_t i = 0; i < len; ++i) {
        h.access[s].push_back(r.str());
      }
    }
    if (!r.at_end()) return std::nullopt;
    return h;
  } catch (const store::SerializeError&) {
    return std::nullopt;
  }
}

void store_hypothesis(store::ObjectStore& os, const LearnCacheKey& key,
                      const Hypothesis& h) {
  os.put(key.digest(), encode_hypothesis(h));
}

std::optional<Hypothesis> load_hypothesis(store::ObjectStore& os,
                                          const LearnCacheKey& key) {
  const auto blob = os.get(key.digest());
  if (!blob) return std::nullopt;
  return decode_hypothesis(*blob);
}

}  // namespace ecucsp::learn
