#include "learn/learner.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecucsp::learn {

namespace {

Word concat(const Word& a, const Word& b) {
  Word out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Word concat(const Word& a, const std::string& e, const Word& b) {
  Word out = a;
  out.push_back(e);
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

std::size_t Hypothesis::transition_count() const {
  std::size_t n = 0;
  for (const auto& row : succ) {
    n += static_cast<std::size_t>(
        std::count_if(row.begin(), row.end(),
                      [](std::uint32_t t) { return t != DEAD; }));
  }
  return n;
}

std::size_t Hypothesis::accepted_prefix(const Word& word) const {
  std::uint32_t state = root;
  std::size_t k = 0;
  for (; k < word.size(); ++k) {
    const auto sym = std::lower_bound(alphabet.begin(), alphabet.end(),
                                      word[k]);
    if (sym == alphabet.end() || *sym != word[k]) break;  // outside Sigma
    const std::uint32_t next =
        succ[state][static_cast<std::size_t>(sym - alphabet.begin())];
    if (next == DEAD) break;
    state = next;
  }
  return k;
}

TreeLearner::TreeLearner(MembershipOracle& oracle) : oracle_(oracle) {
  // Root discriminates with the empty suffix. Its reject side is the one
  // dead leaf (prefix closure: all non-members are equivalent); its accept
  // side starts as the leaf of the empty access word — the empty trace is
  // a member of every trace language.
  Node root;
  root.leaf = false;
  root.suffix = {};
  nodes_.push_back(root);  // 0

  Node dead;
  dead.leaf = true;
  dead.dead = true;
  nodes_.push_back(dead);  // 1

  Node eps;
  eps.leaf = true;
  nodes_.push_back(eps);  // 2

  root_ = 0;
  dead_leaf_ = 1;
  nodes_[0].accept = 2;
  nodes_[0].reject = 1;
  leaves_ = {2};
}

std::vector<std::int32_t> TreeLearner::sift_batch(
    const std::vector<Word>& words) {
  // All words descend in lockstep; one prefetch per tree depth resolves
  // the whole frontier's membership questions in parallel, then the
  // descent itself folds sequentially.
  std::vector<std::int32_t> at(words.size(), root_);
  for (;;) {
    std::vector<Word> queries;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (!nodes_[static_cast<std::size_t>(at[i])].leaf) {
        queries.push_back(
            concat(words[i], nodes_[static_cast<std::size_t>(at[i])].suffix));
      }
    }
    if (queries.empty()) return at;
    oracle_.prefetch(queries);
    for (std::size_t i = 0; i < words.size(); ++i) {
      Node& n = nodes_[static_cast<std::size_t>(at[i])];
      if (n.leaf) continue;
      at[i] = oracle_.member(concat(words[i], n.suffix)) ? n.accept : n.reject;
    }
  }
}

Hypothesis TreeLearner::hypothesis() {
  Hypothesis h;
  h.alphabet = oracle_.alphabet();
  const std::size_t n = leaves_.size();
  const std::size_t k = h.alphabet.size();

  // State numbering = live-leaf creation order; the root state is the
  // empty access word's leaf, which is created first.
  std::vector<std::uint32_t> state_of(nodes_.size(), Hypothesis::DEAD);
  h.access.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    state_of[static_cast<std::size_t>(leaves_[s])] = static_cast<std::uint32_t>(s);
    h.access[s] = nodes_[static_cast<std::size_t>(leaves_[s])].access;
  }
  h.root = 0;

  // Transitions: sift access(q)·a for every (state, symbol), all in one
  // breadth-batched pass.
  std::vector<Word> words;
  words.reserve(n * k);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < k; ++a) {
      words.push_back(concat(h.access[s], h.alphabet[a], {}));
    }
  }
  const std::vector<std::int32_t> target = sift_batch(words);

  h.succ.assign(n, std::vector<std::uint32_t>(k, Hypothesis::DEAD));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < k; ++a) {
      const std::int32_t leaf = target[s * k + a];
      if (leaf != dead_leaf_) {
        h.succ[s][a] = state_of[static_cast<std::size_t>(leaf)];
      }
    }
  }
  return h;
}

bool TreeLearner::refine(const Word& word) {
  const Hypothesis h = hypothesis();
  const std::size_t h_acc = h.accepted_prefix(word);
  const bool h_member = h_acc == word.size();
  oracle_.prefetch({word});
  const bool l_member = oracle_.member(word);
  if (h_member == l_member) return false;

  // Hypothesis run states q_0..q_last (all live; last = h_acc).
  const std::size_t last = h_acc;
  std::vector<std::uint32_t> run{h.root};
  {
    std::uint32_t state = h.root;
    for (std::size_t i = 0; i < last; ++i) {
      const auto sym = std::lower_bound(h.alphabet.begin(), h.alphabet.end(),
                                        word[i]);
      state = h.succ[state][static_cast<std::size_t>(sym - h.alphabet.begin())];
      run.push_back(state);
    }
  }

  // Rivest–Schapire: beta_i = member(access(q_i) · word[i..]).
  //  * hypothesis accepts, oracle rejects: beta_0 = false, beta_m = true
  //    (access words are members);
  //  * hypothesis run dies at `last`, oracle accepts: beta_0 = true and
  //    beta_last = false (its prefix access(q_last)·word[last] was already
  //    established a non-member when the dead transition was sifted, and
  //    prefix closure propagates the rejection).
  // Either way beta flips somewhere in [0, last); the first flip i names a
  // wrong transition q_i --word[i]--> q_{i+1}, and the remaining suffix
  // word[i+1..] distinguishes access(q_i)·word[i] from access(q_{i+1}).
  std::vector<Word> beta_words(last + 1);
  for (std::size_t i = 0; i <= last; ++i) {
    beta_words[i] = concat(h.access[run[i]],
                           Word(word.begin() + static_cast<std::ptrdiff_t>(i),
                                word.end()));
  }
  oracle_.prefetch(beta_words);
  std::size_t flip = last;  // first i with beta_i != beta_{i+1}
  bool beta_i = oracle_.member(beta_words[0]);
  bool beta_flip_side = beta_i;
  for (std::size_t i = 0; i < last; ++i) {
    const bool beta_next = oracle_.member(beta_words[i + 1]);
    if (beta_next != beta_i) {
      flip = i;
      beta_flip_side = beta_i;
      break;
    }
    beta_i = beta_next;
  }
  if (flip == last) {
    // Cannot happen for a true counterexample (see the case analysis
    // above); a hard throw beats silently looping forever.
    throw std::logic_error("learn: counterexample with no beta flip");
  }

  // Split the leaf of q_{flip+1}: it becomes an internal node testing the
  // suffix word[flip+1..]; the old access word keeps its hypothesis state
  // slot (a fresh leaf node at the same position in leaves_), the new
  // access word access(q_flip)·word[flip] becomes a new state.
  const std::int32_t split_node = leaves_[run[flip + 1]];
  const Word new_access = concat(h.access[run[flip]], word[flip], {});
  const Word suffix(word.begin() + static_cast<std::ptrdiff_t>(flip) + 1,
                    word.end());

  Node old_leaf;
  old_leaf.leaf = true;
  old_leaf.access = nodes_[static_cast<std::size_t>(split_node)].access;
  const auto old_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(old_leaf);

  Node new_leaf;
  new_leaf.leaf = true;
  new_leaf.access = new_access;
  const auto new_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(new_leaf);

  Node& internal = nodes_[static_cast<std::size_t>(split_node)];
  internal.leaf = false;
  internal.access.clear();
  internal.suffix = suffix;
  // member(new_access · suffix) = beta_flip_side;
  // member(old access · suffix) = !beta_flip_side (the flip).
  internal.accept = beta_flip_side ? new_id : old_id;
  internal.reject = beta_flip_side ? old_id : new_id;

  leaves_[run[flip + 1]] = old_id;
  leaves_.push_back(new_id);
  ++splits_;
  return true;
}

}  // namespace ecucsp::learn
