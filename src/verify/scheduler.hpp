// Parallel batch-verification scheduler.
//
// A work-queue thread pool sized to the hardware (or --jobs N): workers are
// std::jthreads parked on a condition variable; run() enqueues one job per
// CheckTask and blocks until all have completed. Each job executes on its
// own freshly built Context (see task.hpp), so workers share nothing but
// the queue itself — the engine runs entirely lock-free.
//
// Timeouts are cooperative: the worker arms the task's CancelToken with the
// deadline and the engine's exploration loops poll it (core/cancel.hpp).
// A timed-out task therefore unwinds by exception on its own worker, which
// then simply picks up the next job — no thread is killed, the pool never
// stalls, and destruction joins everything via jthread's stop_token.
//
// Determinism: verdicts, counterexamples and stats of every task are
// computed in an isolated Context, so a batch yields byte-identical
// outcomes (in submission order) whatever the worker count — scheduling can
// only affect the wall-time fields. tests/verify_scheduler_test.cpp pins
// this.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "verify/task.hpp"

namespace ecucsp::verify {

struct SchedulerOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency().
  unsigned jobs = 0;
  /// Applied to tasks that do not carry their own timeout.
  std::optional<std::chrono::milliseconds> default_timeout;
  /// In-check exploration threads per task (the refine wave engine);
  /// 0 means hardware_concurrency() / jobs. Whatever is requested is
  /// clamped so that jobs × threads never oversubscribes the machine:
  /// effective threads = max(1, min(threads, hardware / jobs)). The
  /// effective value is installed as the ambient check_threads() for the
  /// duration of every run(), so factory, CSPm and custom-mode tasks all
  /// inherit it. Default 1: nested parallelism is opt-in — with enough
  /// tasks, across-check parallelism already saturates the machine.
  unsigned threads = 1;
  /// State-space reduction applied inside every check of the batch
  /// (refine/compact.hpp), installed as the ambient check_compression() for
  /// the duration of run() exactly like `threads`. Verdict-, cx- and
  /// vacuity-preserving, so batch outcomes are byte-identical at every
  /// level; only wall time and exploration stats change.
  Compression compression = Compression::None;
};

class VerifyScheduler {
 public:
  explicit VerifyScheduler(SchedulerOptions options = {});
  ~VerifyScheduler();

  VerifyScheduler(const VerifyScheduler&) = delete;
  VerifyScheduler& operator=(const VerifyScheduler&) = delete;

  unsigned jobs() const { return jobs_; }

  /// Effective in-check threads per task after the jobs × threads ≤ hardware
  /// budget clamp (see SchedulerOptions::threads).
  unsigned threads() const { return threads_; }

  /// Reduction mode installed for the duration of each run().
  Compression compression() const { return options_.compression; }

  /// Run the whole batch, blocking until every task has an outcome.
  /// Outcomes are returned in submission order. Only one run() may be active
  /// at a time; concurrent callers are serialised on an internal mutex.
  BatchResult run(const std::vector<CheckTask>& tasks);

  /// Asynchronous single-task intake — the serve layer's path into the same
  /// worker pool, without run()'s batch barrier. Enqueues `task` and returns
  /// immediately; `done` runs on the worker thread that executed the task,
  /// after the outcome is complete. The caller owns `token` (it must outlive
  /// the completion callback) and arms nothing — the worker applies the
  /// task's / scheduler's timeout exactly as run() does. Unlike run(),
  /// submit() does not install the ambient check_threads()/compression for
  /// the job: a long-running service installs them once for its own
  /// lifetime (see serve::VerifyService). submit() may interleave freely
  /// with batch run() calls; the pool serves both queues in FIFO order.
  void submit(CheckTask task, CancelToken* token,
              std::function<void(TaskOutcome)> done);

  /// Tasks accepted (batch or async) whose outcome is not yet complete —
  /// queued plus running. Admission-control signal for the serve layer.
  std::size_t pending() const;

  /// Cooperatively cancel everything in flight and queued. Queued tasks
  /// complete immediately with status Cancelled; running tasks unwind at
  /// their next poll. Callable from any thread (e.g. a signal handler path).
  void cancel_all();

 private:
  /// A submit()ed task owns its storage; the worker moves the outcome into
  /// the completion callback instead of a caller-provided slot.
  struct AsyncJob {
    CheckTask task;
    CancelToken* token = nullptr;
    std::function<void(TaskOutcome)> done;
  };

  struct Job {
    const CheckTask* task = nullptr;
    TaskOutcome* outcome = nullptr;
    CancelToken* token = nullptr;
    std::shared_ptr<AsyncJob> owned;  // non-null for submit() jobs
  };

  void worker(std::stop_token stop);

  unsigned jobs_ = 1;
  unsigned threads_ = 1;
  SchedulerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable_any cv_;       // workers wait here for jobs
  std::condition_variable cv_done_;      // run() waits here for completion
  std::deque<Job> queue_;
  std::size_t outstanding_ = 0;          // batch jobs queued or running
  std::size_t async_outstanding_ = 0;    // submit() jobs queued or running
  std::vector<CancelToken>* batch_tokens_ = nullptr;  // for cancel_all

  std::mutex run_mu_;  // serialises concurrent run() callers

  std::vector<std::jthread> workers_;  // last member: joins before the rest dies
};

/// Batch a set of independent boolean queries through the worker pool and
/// return their answers in submission order — the membership-query path of
/// the active learner (src/learn), where one round produces hundreds of
/// independent oracle runs that are embarrassingly parallel but whose
/// *answers* must fold deterministically. Each query becomes a custom-mode
/// CheckTask (true == Passed); results are read back in submission order,
/// so the answer vector is independent of worker count and scheduling.
/// A query that throws, times out or is cancelled cannot be represented as
/// a boolean — run_bool_batch throws std::runtime_error naming it, because
/// a learner that silently mis-records a membership answer would construct
/// a wrong hypothesis with no diagnostic.
std::vector<bool> run_bool_batch(
    VerifyScheduler& sched,
    const std::vector<std::function<bool(CancelToken&)>>& queries,
    std::string_view label = "query");

}  // namespace ecucsp::verify
