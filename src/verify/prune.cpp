#include "verify/prune.hpp"

#include "lint/cspm_reach.hpp"
#include "refine/lts.hpp"
#include "refine/normalize.hpp"

namespace ecucsp::verify {

bool predict_vacuous_pass(Context& ctx, ProcessRef spec, ProcessRef impl,
                          Model model, std::size_t max_states) {
  if (model != Model::Traces) return false;
  try {
    // Spec side: exact. Compile and normalize the specification the same
    // way the sweep would; the constrained set below is then literally the
    // one refinement_sweep's vacuity detector computes.
    const Lts spec_lts = compile_lts(ctx, spec, max_states);
    const NormLts norm = normalize(spec_lts, /*with_divergence=*/false);

    EventSet allowed_union;
    EventSet allowed_inter;
    bool first = true;
    for (const NormNode& n : norm.nodes) {
      allowed_union = allowed_union.set_union(n.initials);
      allowed_inter =
          first ? n.initials : allowed_inter.set_intersection(n.initials);
      first = false;
    }
    EventSet constrained = allowed_union.set_difference(allowed_inter);
    constrained = constrained.set_difference(EventSet{TAU, TICK});
    if (constrained.empty()) return false;  // dynamic run would not flag it

    // Impl side: over-approximate. reach includes TICK when any component
    // may terminate and never includes TAU, so the subset test against
    // allowed_inter also covers termination (a spec that cannot always tick
    // rejects an impl that might).
    const EventSet reach = lint::reachable_events_over(ctx, impl);
    if (reach.intersects(constrained)) return false;
    return reach.subset_of(allowed_inter);
  } catch (const std::exception&) {
    // Spec too large for the budget, unresolved reference, cancelled — the
    // prediction abstains and the cell runs normally.
    return false;
  }
}

CheckResult pruned_pass() {
  CheckResult r;
  r.passed = true;
  r.vacuous = true;
  r.pruned = true;
  return r;
}

}  // namespace ecucsp::verify
