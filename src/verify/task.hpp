// Batch-verification task model.
//
// The paper's workflow (Figure 1) produces *many* independent FDR-style
// checks: one per Table III requirement, per attacker model, per property
// variant. A CheckTask describes one such check in a self-contained,
// Context-free way so the scheduler can run it on any worker thread: the
// task carries *factories* (or CSPm source text) rather than ProcessRefs,
// and the worker instantiates them inside a Context it builds and owns for
// exactly the duration of the task. This preserves the core invariant from
// src/core/context.hpp — one verification task = one Context, no shared
// mutable state — which is what makes task-level parallelism safe without a
// single lock in the engine.
//
// Because the task's Context dies with the task, a TaskOutcome carries only
// plain data: the verdict, the stats, and the counterexample already
// rendered to text while the Context was alive.
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cancel.hpp"
#include "refine/check.hpp"

namespace ecucsp::verify {

enum class CheckKind {
  Refinement,       // spec [model= impl
  DeadlockFree,     // impl :[deadlock free]
  DivergenceFree,   // impl :[divergence free]
  Deterministic,    // impl :[deterministic]
};

/// A check verdict with its counterexample flattened to text, safe to carry
/// out of the task once the task's Context is destroyed.
struct RenderedCheck {
  CheckResult result;
  std::string counterexample;
};

/// Flatten `r`'s counterexample (if any) using `ctx` while it is alive.
RenderedCheck render(const Context& ctx, CheckResult r);

/// One independent check. Exactly one of three modes must be populated:
///   * factory mode — `impl` (and `spec` for refinements) build the process
///     terms inside the worker's fresh Context;
///   * CSPm mode — `sources` are loaded into a fresh evaluator and the
///     assertion at `assertion_index` is run;
///   * custom mode — `custom` owns the whole check (it typically builds a
///     domain model such as ota::OtaModel, which embeds its own Context).
/// Factories must be self-contained: they may capture plain data (strings,
/// ints, event names) but never a Context, ProcessRef or EventId from
/// outside — those are meaningless in the worker's Context.
struct CheckTask {
  std::string name;

  // --- factory mode ---
  CheckKind kind = CheckKind::Refinement;
  Model model = Model::Traces;
  std::function<ProcessRef(Context&)> spec;
  std::function<ProcessRef(Context&)> impl;

  // --- CSPm mode ---
  std::vector<std::string> sources;   // scripts loaded in order
  std::optional<std::size_t> assertion_index;

  // --- custom mode ---
  // Returns the verdict plus the counterexample already rendered to text,
  // because the Context the custom check builds is gone once it returns.
  // Use render() at the end of the lambda while the Context is still alive.
  std::function<RenderedCheck(CancelToken&)> custom;

  /// Opt into static pruning (--prune=static): before running a Traces
  /// refinement, ask verify::predict_vacuous_pass whether the cell is a
  /// statically certified vacuous PASS and, if so, report pruned_pass()
  /// without exploring. Verdict-preserving by construction (see prune.hpp);
  /// cells the analysis cannot certify run normally.
  bool prune = false;

  /// Per-check wall-clock budget; the worker arms the task's CancelToken
  /// with it just before the check starts.
  std::optional<std::chrono::milliseconds> timeout;
  /// Per-check state-count budget, forwarded to every exploration.
  std::size_t max_states = 1u << 22;

  /// Optional oracle for reporting: some matrix cells (e.g. R05 on the
  /// unprotected ECU under attack) are *supposed* to fail.
  std::optional<bool> expected;
};

enum class TaskStatus {
  Passed,
  Failed,        // check ran to completion, refinement does not hold
  TimedOut,      // per-check deadline fired
  Cancelled,     // batch-level cancellation fired
  StateLimit,    // exceeded the task's max_states budget
  Error,         // model construction / evaluation threw
};

std::string_view to_string(TaskStatus s);

struct TaskOutcome {
  std::string name;
  TaskStatus status = TaskStatus::Error;
  CheckStats stats;
  /// Human-readable counterexample (Counterexample::describe output plus the
  /// assertion description for CSPm tasks); empty when the check passed.
  std::string counterexample;
  /// Diagnostic text for Error / StateLimit statuses.
  std::string error;
  /// True when the verdict came out of the installed verification cache
  /// (CheckResult::from_cache) rather than a fresh exploration.
  bool cached = false;
  /// CheckResult::vacuous: the check passed but the implementation never
  /// reaches any event the spec constrains, so the PASS is suspect.
  bool vacuous = false;
  /// CheckResult::pruned: the verdict was statically certified by the
  /// --prune=static analysis instead of explored. Implies vacuous.
  bool pruned = false;
  std::chrono::nanoseconds wall{0};
  std::optional<bool> expected;

  bool passed() const { return status == TaskStatus::Passed; }
  /// Verdict matches the task's oracle (trivially true without one).
  bool as_expected() const {
    if (!expected) return true;
    if (status != TaskStatus::Passed && status != TaskStatus::Failed)
      return false;
    return passed() == *expected;
  }
};

struct BatchResult {
  /// One outcome per submitted task, in submission order regardless of the
  /// order workers finished them.
  std::vector<TaskOutcome> outcomes;
  std::chrono::nanoseconds wall{0};  // batch wall time
  std::chrono::nanoseconds cpu{0};   // sum of per-task wall times

  std::size_t count(TaskStatus s) const;
  bool all_passed() const { return count(TaskStatus::Passed) == outcomes.size(); }
  bool all_as_expected() const;
  std::size_t total_states() const;
  std::size_t total_transitions() const;
  /// cpu / wall: the effective parallelism the batch achieved.
  double speedup() const;
};

/// Run one task to completion on the calling thread, mapping engine
/// exceptions (CheckCancelled, StateLimitExceeded, ModelError, ...) to task
/// statuses. `token` must already be armed with any deadline. This is the
/// scheduler's worker body, exposed for tests and for --jobs 1 runs.
TaskOutcome run_task(const CheckTask& task, CancelToken& token);

}  // namespace ecucsp::verify
