#include "verify/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "cspm/eval.hpp"
#include "verify/prune.hpp"

namespace ecucsp::verify {

std::string_view to_string(TaskStatus s) {
  switch (s) {
    case TaskStatus::Passed:
      return "passed";
    case TaskStatus::Failed:
      return "FAILED";
    case TaskStatus::TimedOut:
      return "timed out";
    case TaskStatus::Cancelled:
      return "cancelled";
    case TaskStatus::StateLimit:
      return "state limit";
    case TaskStatus::Error:
      return "error";
  }
  return "?";
}

RenderedCheck render(const Context& ctx, CheckResult r) {
  RenderedCheck out;
  if (!r.passed && r.counterexample) {
    out.counterexample = r.counterexample->describe(ctx);
  }
  out.result = std::move(r);
  return out;
}

std::size_t BatchResult::count(TaskStatus s) const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [s](const TaskOutcome& o) { return o.status == s; }));
}

bool BatchResult::all_as_expected() const {
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const TaskOutcome& o) { return o.as_expected(); });
}

std::size_t BatchResult::total_states() const {
  std::size_t n = 0;
  for (const TaskOutcome& o : outcomes) n += o.stats.impl_states + o.stats.spec_states;
  return n;
}

std::size_t BatchResult::total_transitions() const {
  std::size_t n = 0;
  for (const TaskOutcome& o : outcomes) n += o.stats.impl_transitions;
  return n;
}

double BatchResult::speedup() const {
  if (wall.count() <= 0) return 1.0;
  return static_cast<double>(cpu.count()) / static_cast<double>(wall.count());
}

namespace {

/// Dispatch one task in whichever mode it is populated for. Runs inside the
/// worker's try block; every Context created here is local to this call.
RenderedCheck execute(const CheckTask& task, CancelToken& token) {
  if (task.custom) return task.custom(token);

  if (!task.sources.empty()) {
    Context ctx;
    cspm::Evaluator ev(ctx);
    for (const std::string& src : task.sources) ev.load_source(src);
    const std::size_t index = task.assertion_index.value_or(0);
    if (task.prune) {
      if (const auto t = ev.assertion_terms(index);
          t && predict_vacuous_pass(ctx, t->spec, t->impl, t->model,
                                    task.max_states)) {
        return render(ctx, pruned_pass());
      }
    }
    cspm::AssertionResult ar = ev.check_assertion(index, task.max_states, &token);
    RenderedCheck out = render(ctx, std::move(ar.result));
    if (!out.counterexample.empty()) {
      out.counterexample = ar.description + ": " + out.counterexample;
    }
    return out;
  }

  Context ctx;
  if (!task.impl) throw std::runtime_error("CheckTask '" + task.name + "' has no impl");
  const ProcessRef impl = task.impl(ctx);
  CheckResult r;
  switch (task.kind) {
    case CheckKind::Refinement: {
      if (!task.spec) throw std::runtime_error("CheckTask '" + task.name + "' has no spec");
      const ProcessRef spec = task.spec(ctx);
      if (task.prune &&
          predict_vacuous_pass(ctx, spec, impl, task.model, task.max_states)) {
        return render(ctx, pruned_pass());
      }
      r = check_refinement(ctx, spec, impl, task.model, task.max_states, &token);
      break;
    }
    case CheckKind::DeadlockFree:
      r = check_deadlock_free(ctx, impl, task.max_states, &token);
      break;
    case CheckKind::DivergenceFree:
      r = check_divergence_free(ctx, impl, task.max_states, &token);
      break;
    case CheckKind::Deterministic:
      r = check_deterministic(ctx, impl, task.max_states, &token);
      break;
  }
  return render(ctx, std::move(r));
}

}  // namespace

TaskOutcome run_task(const CheckTask& task, CancelToken& token) {
  TaskOutcome out;
  out.name = task.name;
  out.expected = task.expected;
  const auto start = CancelToken::Clock::now();
  try {
    token.poll_now();  // an already-fired token skips the build entirely
    RenderedCheck rc = execute(task, token);
    out.status = rc.result.passed ? TaskStatus::Passed : TaskStatus::Failed;
    out.stats = rc.result.stats;
    out.cached = rc.result.from_cache;
    out.vacuous = rc.result.vacuous;
    out.pruned = rc.result.pruned;
    out.counterexample = std::move(rc.counterexample);
  } catch (const CheckCancelled& c) {
    out.status = c.reason() == CheckCancelled::Reason::DeadlineExceeded
                     ? TaskStatus::TimedOut
                     : TaskStatus::Cancelled;
    out.error = c.what();
  } catch (const StateLimitExceeded& e) {
    out.status = TaskStatus::StateLimit;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.status = TaskStatus::Error;
    out.error = e.what();
  }
  out.wall = CancelToken::Clock::now() - start;
  return out;
}

VerifyScheduler::VerifyScheduler(SchedulerOptions options) : options_(options) {
  jobs_ = options.jobs != 0 ? options.jobs
                            : std::max(1u, std::thread::hardware_concurrency());
  // Nested-parallelism budget: jobs × threads must not exceed the machine.
  // A requested 0 means "whatever the budget allows"; anything explicit is
  // still clamped to the per-job share.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned per_job = std::max(1u, hw / jobs_);
  threads_ = options.threads == 0 ? per_job
                                  : std::max(1u, std::min(options.threads, per_job));
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { worker(stop); });
  }
}

VerifyScheduler::~VerifyScheduler() {
  // jthread destructors request_stop() and join; the stop-token-aware
  // cv_.wait in worker() wakes parked workers so destruction never hangs.
}

void VerifyScheduler::worker(std::stop_token stop) {
  while (true) {
    Job job;
    {
      std::unique_lock lk(mu_);
      if (!cv_.wait(lk, stop, [this] { return !queue_.empty(); })) return;
      job = queue_.front();
      queue_.pop_front();
    }
    const auto timeout =
        job.task->timeout ? job.task->timeout : options_.default_timeout;
    if (timeout) job.token->set_timeout(*timeout);
    if (job.owned) {
      TaskOutcome outcome = run_task(*job.task, *job.token);
      // Count down before the callback: a caller draining on pending()==0
      // may then tear down state the callback no longer touches — the
      // callback itself must only use what it captured.
      {
        std::lock_guard lk(mu_);
        --async_outstanding_;
      }
      cv_done_.notify_all();
      job.owned->done(std::move(outcome));
      continue;
    }
    *job.outcome = run_task(*job.task, *job.token);
    {
      std::lock_guard lk(mu_);
      --outstanding_;
    }
    cv_done_.notify_all();
  }
}

void VerifyScheduler::submit(CheckTask task, CancelToken* token,
                             std::function<void(TaskOutcome)> done) {
  auto owned = std::make_shared<AsyncJob>();
  owned->task = std::move(task);
  owned->token = token;
  owned->done = std::move(done);
  {
    std::lock_guard lk(mu_);
    Job job;
    job.task = &owned->task;
    job.token = owned->token;
    job.owned = std::move(owned);
    queue_.push_back(std::move(job));
    ++async_outstanding_;
  }
  cv_.notify_one();
}

std::size_t VerifyScheduler::pending() const {
  std::lock_guard lk(mu_);
  return outstanding_ + async_outstanding_;
}

BatchResult VerifyScheduler::run(const std::vector<CheckTask>& tasks) {
  std::lock_guard run_lock(run_mu_);

  // Install the budgeted per-task thread count and the reduction mode as
  // the ambient defaults for the whole batch: every check_* a worker
  // reaches (factory, CSPm or custom mode) picks them up without signature
  // plumbing. Restored on exit.
  const ScopedCheckThreads nested(threads_);
  const ScopedCheckCompression reduced(options_.compression);

  BatchResult batch;
  batch.outcomes.resize(tasks.size());
  std::vector<CancelToken> tokens(tasks.size());

  const auto start = CancelToken::Clock::now();
  {
    std::lock_guard lk(mu_);
    batch_tokens_ = &tokens;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queue_.push_back(Job{&tasks[i], &batch.outcomes[i], &tokens[i], nullptr});
    }
    outstanding_ = tasks.size();
  }
  cv_.notify_all();
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [this] { return outstanding_ == 0; });
    batch_tokens_ = nullptr;
  }
  batch.wall = CancelToken::Clock::now() - start;
  for (const TaskOutcome& o : batch.outcomes) batch.cpu += o.wall;
  return batch;
}

void VerifyScheduler::cancel_all() {
  std::lock_guard lk(mu_);
  if (!batch_tokens_) return;
  for (CancelToken& t : *batch_tokens_) t.request_cancel();
}

std::vector<bool> run_bool_batch(
    VerifyScheduler& sched,
    const std::vector<std::function<bool(CancelToken&)>>& queries,
    std::string_view label) {
  std::vector<CheckTask> tasks(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    tasks[i].name = std::string(label) + "-" + std::to_string(i);
    tasks[i].custom = [&queries, i](CancelToken& token) -> RenderedCheck {
      RenderedCheck out;
      out.result.passed = queries[i](token);
      return out;
    };
  }
  const BatchResult batch = sched.run(tasks);
  std::vector<bool> out(queries.size());
  for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
    const TaskOutcome& o = batch.outcomes[i];
    if (o.status != TaskStatus::Passed && o.status != TaskStatus::Failed) {
      throw std::runtime_error(
          "bool batch query '" + o.name + "' did not complete (" +
          std::string(to_string(o.status)) +
          (o.error.empty() ? ")" : "): " + o.error));
    }
    out[i] = o.passed();
  }
  return out;
}

}  // namespace ecucsp::verify
