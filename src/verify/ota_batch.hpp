// Batch builders for the paper's OTA case study: the Table III requirement
// suite swept across attacker models, packaged as scheduler CheckTasks.
//
// Each cell of the matrix is a custom-mode task that builds its own
// ota::OtaModel (and therefore its own Context) on the worker, so the whole
// matrix parallelises with zero shared state. The expected verdicts encode
// the paper's security argument: the MAC-verifying ECU keeps R05 under
// attack, the unprotected ECU loses R02/R03/R05, and an active attacker can
// always pre-empt R01's "inventory request comes first" on the wire.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "verify/task.hpp"

namespace ecucsp::verify {

enum class AttackerVariant {
  None,            // VMG + MAC ECU, no attacker on the bus
  MacEcu,          // Dolev-Yao injector vs the MAC-verifying ECU
  UnprotectedEcu,  // Dolev-Yao injector vs the ECU without MAC checks
};

std::string_view to_string(AttackerVariant v);

struct OtaMatrixOptions {
  /// Interleave this many hidden three-phase cycler processes with the
  /// system under test before checking. Verdicts are unchanged (the cyclers
  /// are invisible and independent) but the explored state space grows by
  /// ~3^dilation — the knob bench_parallel_checks uses to give each task
  /// enough work for parallel speedup to be measurable.
  std::size_t dilation = 0;
  std::optional<std::chrono::milliseconds> timeout;
  std::size_t max_states = 1u << 22;
  /// Fault injection for the vacuity detector: rename the system under test
  /// onto a fresh primed alphabet before checking, the same effect as an
  /// extractor that mis-maps every network channel. The R02..R05 specs then
  /// hold trivially — their cells still PASS, but with CheckResult::vacuous
  /// set, which the matrix report surfaces as a warning.
  bool inject_alphabet_mismatch = false;
  /// --prune=static: certify vacuous-PASS cells with the verify-layer static
  /// analysis (verify/prune.hpp) instead of exploring them. Verdicts are
  /// unchanged by construction; pruned cells carry CheckResult::pruned.
  bool prune = false;
};

/// The full R01..R05 x attacker-model matrix: 15 tasks in row-major
/// (requirement, variant) order, each carrying its expected verdict.
std::vector<CheckTask> ota_requirement_matrix(OtaMatrixOptions options = {});

/// The extended Update Server chain properties E1..E5 (paper Section
/// VIII-A) as five more independent tasks.
std::vector<CheckTask> ota_extended_batch(OtaMatrixOptions options = {});

}  // namespace ecucsp::verify
