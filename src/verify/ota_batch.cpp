#include "verify/ota_batch.hpp"

#include <iterator>

#include "ota/ota.hpp"
#include "verify/prune.hpp"

namespace ecucsp::verify {

std::string_view to_string(AttackerVariant v) {
  switch (v) {
    case AttackerVariant::None:
      return "no attacker";
    case AttackerVariant::MacEcu:
      return "attack vs MAC ECU";
    case AttackerVariant::UnprotectedEcu:
      return "attack vs open ECU";
  }
  return "?";
}

namespace {

ProcessRef system_of(ota::OtaModel& m, AttackerVariant v) {
  switch (v) {
    case AttackerVariant::None:
      return m.system_plain;
    case AttackerVariant::MacEcu:
      return m.system_attacked;
    case AttackerVariant::UnprotectedEcu:
      return m.system_unprotected;
  }
  return m.system_plain;
}

/// system ||| (k hidden three-phase cyclers). The cyclers touch a private
/// channel only and are hidden, so every visible trace — and hence every
/// verdict of the trace-model requirement checks — is untouched, while the
/// interleaving multiplies the explored product space by ~3^k.
ProcessRef dilate(Context& ctx, ProcessRef system, std::size_t k) {
  if (k == 0) return system;
  std::vector<Value> ids, phases;
  for (std::size_t i = 0; i < k; ++i) ids.push_back(Value::integer(static_cast<std::int64_t>(i)));
  for (int p = 0; p < 3; ++p) phases.push_back(Value::integer(p));
  const ChannelId dil = ctx.channel("verify_dil", {ids, phases});

  ctx.define("VERIFY_DIL", [dil](Context& cx, std::span<const Value> args) {
    const Value id = args[0];
    const std::int64_t phase = args[1].as_int();
    const std::int64_t next = (phase + 1) % 3;
    return cx.prefix(cx.event(dil, {id, Value::integer(phase)}),
                     cx.var("VERIFY_DIL", {id, Value::integer(next)}));
  });

  ProcessRef cyclers = ctx.var("VERIFY_DIL", {ids[0], Value::integer(0)});
  for (std::size_t i = 1; i < k; ++i) {
    cyclers = ctx.interleave(
        cyclers, ctx.var("VERIFY_DIL", {ids[i], Value::integer(0)}));
  }
  return ctx.hide(ctx.interleave(system, cyclers), ctx.events_of(dil));
}

/// Rename every event the system can perform onto a fresh primed channel,
/// leaving the spec-side events interned but unreachable — the signature of
/// an extraction pipeline that got its channel mapping wrong. The primed
/// events are interned *before* the requirement specs are built, so specs
/// quantifying over Sigma (RUN, precedence witnesses) still admit them.
ProcessRef inject_mismatch(Context& ctx, ProcessRef system) {
  const EventSet alpha = ctx.alphabet();
  std::vector<Value> idx;
  idx.reserve(alpha.size());
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    idx.push_back(Value::integer(static_cast<std::int64_t>(i)));
  }
  const ChannelId prime = ctx.channel("verify_mismatch", {idx});
  std::vector<RenamePair> pairs;
  pairs.reserve(alpha.size());
  std::size_t i = 0;
  for (const EventId e : alpha) {
    pairs.push_back({e, ctx.event(prime, {idx[i]})});
    ++i;
  }
  return ctx.rename(system, std::move(pairs));
}

}  // namespace

std::vector<CheckTask> ota_requirement_matrix(OtaMatrixOptions options) {
  // Ground truth for every cell, pinned by tests/verify_scheduler_test.cpp
  // and re-verified on every bench run.
  struct Cell {
    const char* id;
    AttackerVariant variant;
    bool expected;
  };
  const Cell cells[] = {
      // R01: the inventory request is the first network action. An active
      // injector can always put a forged frame on the bus first, so R01 is a
      // benign-environment requirement only.
      {"R01", AttackerVariant::None, true},
      {"R01", AttackerVariant::MacEcu, false},
      {"R01", AttackerVariant::UnprotectedEcu, false},
      // R02: every inventory request is answered by a diagnosis report.
      // Holds even for the open ECU: its reply to a forged request is a
      // *genuine* report, which the VMG only synchronises on after having
      // sent a genuine request — the bus handshake masks the gullibility.
      {"R02", AttackerVariant::None, true},
      {"R02", AttackerVariant::MacEcu, true},
      {"R02", AttackerVariant::UnprotectedEcu, true},
      // R03: update requests lead to installation; the open ECU installs on
      // forged requests, so installation precedes the genuine request.
      {"R03", AttackerVariant::None, true},
      {"R03", AttackerVariant::MacEcu, true},
      {"R03", AttackerVariant::UnprotectedEcu, false},
      // R04: every installation is reported back.
      {"R04", AttackerVariant::None, true},
      {"R04", AttackerVariant::MacEcu, true},
      {"R04", AttackerVariant::UnprotectedEcu, true},
      // R05: installation only after a genuine update request — the paper's
      // headline MAC argument, and its failure mode without verification.
      {"R05", AttackerVariant::None, true},
      {"R05", AttackerVariant::MacEcu, true},
      {"R05", AttackerVariant::UnprotectedEcu, false},
  };

  std::vector<CheckTask> tasks;
  tasks.reserve(std::size(cells));
  for (const Cell& cell : cells) {
    CheckTask t;
    t.name = std::string(cell.id) + " / " + std::string(to_string(cell.variant));
    t.expected = cell.expected;
    t.timeout = options.timeout;
    t.max_states = options.max_states;
    const std::string id = cell.id;
    const AttackerVariant variant = cell.variant;
    const std::size_t dilation = options.dilation;
    const std::size_t max_states = options.max_states;
    const bool mismatch = options.inject_alphabet_mismatch;
    const bool prune = options.prune;
    t.custom = [id, variant, dilation, max_states, mismatch,
                prune](CancelToken& token) {
      token.poll_now();
      auto m = ota::build_ota_model();
      ProcessRef system = dilate(m->ctx, system_of(*m, variant), dilation);
      if (mismatch) system = inject_mismatch(m->ctx, system);
      // Decompose the cell into the exact (spec, impl) the check would run,
      // so the static pruner and the dynamic sweep see identical terms.
      const ota::RequirementCheck rc =
          ota::requirement_check_parts(*m, id, system);
      if (prune && predict_vacuous_pass(m->ctx, rc.spec, rc.impl, rc.model,
                                        max_states)) {
        return render(m->ctx, pruned_pass());
      }
      return render(m->ctx, check_refinement(m->ctx, rc.spec, rc.impl,
                                             rc.model, max_states, &token));
    };
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<CheckTask> ota_extended_batch(OtaMatrixOptions options) {
  struct Prop {
    const char* id;
    bool expected;
  };
  const Prop props[] = {
      {"E1", true}, {"E2", true}, {"E3", true}, {"E4", true}, {"E5", false},
  };
  std::vector<CheckTask> tasks;
  tasks.reserve(std::size(props));
  for (const Prop& p : props) {
    CheckTask t;
    t.name = std::string("extended ") + p.id;
    t.expected = p.expected;
    t.timeout = options.timeout;
    t.max_states = options.max_states;
    const std::string id = p.id;
    const std::size_t max_states = options.max_states;
    t.custom = [id, max_states](CancelToken& token) {
      token.poll_now();
      auto m = ota::build_ota_extended_model();
      return render(m->ctx,
                    ota::check_extended_property(*m, id, max_states, &token));
    };
    tasks.push_back(std::move(t));
  }
  return tasks;
}

}  // namespace ecucsp::verify
