// Verified static pruning of refinement checks (--prune=static).
//
// A matrix cell whose implementation can never touch any event its
// specification constrains is a *vacuous* PASS — the sweep explores the
// whole product space only to report "trivially true" (see
// CheckResult::vacuous). This module predicts exactly those cells without
// exploring, using the term-level reachability over-approximation from
// lint/cspm_reach.hpp, so the scheduler can skip them.
//
// Soundness (why pruning is verdict-preserving — DESIGN.md §14 has the full
// argument). predict_vacuous_pass answers true only when ALL of:
//
//   1. the model is Traces (the only model whose refinement is decided by
//      per-event language inclusion; Failures/FD cells are never pruned);
//   2. the specification compiles and normalizes *exactly* within the
//      check's own state budget (specs here are tiny; this is not an
//      approximation on the spec side);
//   3. the constrained set — events allowed in some but not all spec normal
//      states, the exact set refinement_sweep uses for its vacuity flag —
//      is non-empty;
//   4. reach(impl), a SUPERSET of the implementation's reachable alphabet
//      (term-level fixpoint; Hide subtracts, Rename maps, Var expands via
//      the memoised environment), is disjoint from the constrained set; and
//   5. reach(impl) is a subset of the events allowed in EVERY spec normal
//      state (allowed_inter).
//
// (5) proves the PASS: by induction over any impl trace, every event is
// accepted by every normal spec state, so every impl trace is a spec trace.
// (3)+(4) prove the dynamic vacuity flag: the impl's true alphabet is
// contained in reach, hence also disjoint from the non-empty constrained
// set — exactly the condition under which refinement_sweep sets vacuous.
// The prediction therefore reproduces the dynamic outcome bit for bit:
// passed=true, vacuous=true, zero exploration stats. The proof is by
// induction over traces, not by replaying exploration — so the certificate
// also covers impls whose operational unfolding is infinite (recursion
// through hiding stacks a fresh \H per step) and whose dynamic check could
// only ever end in StateLimit. Any cell the analysis
// cannot certify (including every FAIL) simply runs; over-approximation on
// the impl side can only fail towards running the real check, never towards
// a wrong verdict. The CI prune-coherence gate byte-diffs --prune=static
// against --prune=none to keep this honest.
#pragma once

#include "core/context.hpp"
#include "refine/check.hpp"

namespace ecucsp::verify {

/// True iff `spec [T= impl` is statically certified to be a vacuous PASS
/// (conditions above). False means "run the check", not "fails". Never
/// throws on state-limit/model errors in the analysis itself — any such
/// condition falls back to false.
bool predict_vacuous_pass(Context& ctx, ProcessRef spec, ProcessRef impl,
                          Model model, std::size_t max_states);

/// The verdict a pruned cell reports: PASS, vacuous, pruned, zero stats —
/// byte-identical (minus timing) to what the sweep would have produced.
CheckResult pruned_pass();

}  // namespace ecucsp::verify
