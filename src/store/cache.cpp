#include "store/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "store/serialize.hpp"
#include "store/term_digest.hpp"

namespace ecucsp::store {

namespace {

std::filesystem::path shard_dir(const std::filesystem::path& base,
                                unsigned shard) {
  char name[16];
  std::snprintf(name, sizeof name, "shard-%02u", shard);
  return base / name;
}

}  // namespace

VerificationCache::VerificationCache(std::optional<std::filesystem::path> dir,
                                     unsigned shards) {
  const unsigned n = std::max(1u, shards);
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    if (dir) {
      s->disk = std::make_unique<ObjectStore>(n == 1 ? *dir
                                                     : shard_dir(*dir, i));
    }
    shards_.push_back(std::move(s));
  }
}

Digest VerificationCache::check_key(Context& ctx, ProcessRef spec,
                                    ProcessRef impl, CheckOp op, Model model,
                                    std::size_t max_states) {
  TermDigester td(ctx);
  Hasher h;
  h.str("ecucsp.verdict");
  h.u32(kStoreFormatVersion);
  h.u8(static_cast<std::uint8_t>(op));
  h.u8(static_cast<std::uint8_t>(model));
  h.u64(max_states);
  h.digest(spec ? td.term(spec) : Digest{});
  h.digest(td.term(impl));
  return h.finish();
}

Digest VerificationCache::lts_key(Context& ctx, ProcessRef root,
                                  std::size_t max_states) {
  TermDigester td(ctx);
  Hasher h;
  h.str("ecucsp.lts");
  h.u32(kStoreFormatVersion);
  h.u64(max_states);
  h.digest(td.term(root));
  return h.finish();
}

VerificationCache::Blob VerificationCache::fetch(const Digest& key,
                                                 bool& from_disk) {
  Shard& s = shard(key);
  from_disk = false;
  {
    std::lock_guard lock(s.mu);
    if (auto it = s.memory.find(key); it != s.memory.end()) return it->second;
  }
  if (!s.disk) return nullptr;
  auto blob = s.disk->get(key);
  if (!blob) return nullptr;
  from_disk = true;
  auto shared =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(*blob));
  std::lock_guard lock(s.mu);
  // A racing fetch may have promoted the same object already; either copy
  // is identical, keep the first.
  return s.memory.try_emplace(key, std::move(shared)).first->second;
}

void VerificationCache::insert(const Digest& key,
                               std::vector<std::uint8_t> blob) {
  Shard& s = shard(key);
  auto shared =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(blob));
  if (s.disk) s.disk->put(key, *shared);
  std::lock_guard lock(s.mu);
  s.memory.try_emplace(key, std::move(shared));
  stats_.stores.fetch_add(1, std::memory_order_relaxed);
}

void VerificationCache::evict(const Digest& key) {
  Shard& s = shard(key);
  {
    std::lock_guard lock(s.mu);
    s.memory.erase(key);
  }
  if (s.disk) s.disk->drop(key);
  stats_.decode_failures.fetch_add(1, std::memory_order_relaxed);
}

std::optional<CheckResult> VerificationCache::lookup_check(
    Context& ctx, ProcessRef spec, ProcessRef impl, CheckOp op, Model model,
    std::size_t max_states) {
  const Digest key = check_key(ctx, spec, impl, op, model, max_states);
  bool from_disk = false;
  const Blob blob = fetch(key, from_disk);
  if (!blob) {
    stats_.verdict_misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  try {
    CheckResult result = unseal_check(*blob, ctx);
    stats_.verdict_hits.fetch_add(1, std::memory_order_relaxed);
    (from_disk ? stats_.disk_hits : stats_.memory_hits)
        .fetch_add(1, std::memory_order_relaxed);
    return result;
  } catch (const SerializeError&) {
    evict(key);
    stats_.verdict_misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

void VerificationCache::store_check(Context& ctx, ProcessRef spec,
                                    ProcessRef impl, CheckOp op, Model model,
                                    std::size_t max_states,
                                    const CheckResult& result) {
  insert(check_key(ctx, spec, impl, op, model, max_states),
         seal_check(ctx, result));
}

std::optional<Lts> VerificationCache::lookup_lts(Context& ctx, ProcessRef root,
                                                 std::size_t max_states) {
  const Digest key = lts_key(ctx, root, max_states);
  bool from_disk = false;
  const Blob blob = fetch(key, from_disk);
  if (!blob) {
    stats_.lts_misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  try {
    Lts lts = unseal_lts(*blob, ctx);
    stats_.lts_hits.fetch_add(1, std::memory_order_relaxed);
    (from_disk ? stats_.disk_hits : stats_.memory_hits)
        .fetch_add(1, std::memory_order_relaxed);
    return lts;
  } catch (const SerializeError&) {
    evict(key);
    stats_.lts_misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

void VerificationCache::store_lts(Context& ctx, ProcessRef root,
                                  std::size_t max_states, const Lts& lts) {
  insert(lts_key(ctx, root, max_states), seal_lts(ctx, lts));
}

void VerificationCache::clear_memory() {
  for (auto& s : shards_) {
    std::lock_guard lock(s->mu);
    s->memory.clear();
  }
}

std::size_t VerificationCache::trim(std::uint64_t max_bytes) {
  // Keys spread uniformly over shards, so an even per-shard budget keeps
  // the aggregate bound while letting each shard trim independently.
  const std::uint64_t per_shard = max_bytes / shards_.size();
  std::size_t evicted = 0;
  for (auto& s : shards_) {
    if (s->disk) evicted += s->disk->trim(per_shard);
  }
  return evicted;
}

std::vector<std::vector<std::string>> scan_stored_counterexamples(
    const std::filesystem::path& dir, Context& ctx) {
  namespace fs = std::filesystem;
  std::error_code ec;

  // Both store layouts: the flat <dir>/objects tree and sharded
  // <dir>/shard-NN/objects trees.
  std::vector<fs::path> roots;
  if (fs::is_directory(dir / "objects", ec)) roots.push_back(dir / "objects");
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_directory(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    if (fs::is_directory(it->path() / "objects", ec)) {
      roots.push_back(it->path() / "objects");
    }
  }
  if (roots.empty()) return {};

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file(ec)) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::vector<std::string>> out;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
    CheckResult result;
    try {
      result = unseal_check(blob, ctx);
    } catch (const std::exception&) {
      continue;  // LTS object, foreign format, or incompatible model
    }
    if (result.passed || !result.counterexample) continue;
    const Counterexample& cex = *result.counterexample;
    std::vector<std::string> trace;
    trace.reserve(cex.trace.size() + 1);
    for (EventId e : cex.trace) trace.push_back(ctx.event_name(e));
    if (cex.kind == Counterexample::Kind::TraceViolation ||
        cex.kind == Counterexample::Kind::Nondeterminism) {
      trace.push_back(ctx.event_name(cex.event));
    }
    if (!trace.empty()) out.push_back(std::move(trace));
  }
  return out;
}

}  // namespace ecucsp::store
