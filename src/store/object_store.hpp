// Content-addressed on-disk object store.
//
// Objects live at <dir>/objects/<hex[0:2]>/<hex[2:]>, named by the 128-bit
// key digest. Writes are crash-safe: the blob goes to a unique temp file in
// the same directory (written and fsynced through raw file descriptors,
// retrying EINTR), is renamed into place (rename(2) is atomic within a
// filesystem), and the parent directory is fsynced so the new name itself
// survives a power loss. Readers — including concurrent processes sharing
// the cache directory — never observe a half-written object. Reads treat every
// failure mode (missing file, truncation, garbage, foreign format version)
// as a miss, never an error: the envelope layer (serialize.hpp) verifies
// magic, version and payload digest, and a corrupt object is deleted on
// sight so it cannot poison future runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "store/digest.hpp"

namespace ecucsp::store {

struct ObjectStoreStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> corrupt_dropped{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
};

class ObjectStore {
 public:
  /// The directory is created lazily on the first put; a store pointed at a
  /// nonexistent directory simply misses on every get.
  explicit ObjectStore(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }

  /// Fetch the blob stored under `key`. Any I/O failure or corruption is a
  /// miss (corrupt files are additionally unlinked).
  std::optional<std::vector<std::uint8_t>> get(const Digest& key);

  /// Store `blob` under `key` atomically. Failures (disk full, permission)
  /// are swallowed — the cache is an accelerator, never a correctness
  /// dependency. Returns true when the object landed.
  bool put(const Digest& key, const std::vector<std::uint8_t>& blob);

  /// Delete least-recently-modified objects until the store's total size is
  /// at most `max_bytes`. Returns the number of objects evicted.
  std::size_t trim(std::uint64_t max_bytes);

  /// Remove a single object (used when a get finds corruption).
  void drop(const Digest& key);

  const ObjectStoreStats& stats() const { return stats_; }

 private:
  std::filesystem::path path_of(const Digest& key) const;

  std::filesystem::path dir_;
  ObjectStoreStats stats_;
  std::atomic<std::uint64_t> tmp_counter_{0};
};

}  // namespace ecucsp::store
