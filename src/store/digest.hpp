// Content digests for the verification store.
//
// Everything the store keys on — process terms, CSPm/CAPL source text,
// compiled LTSes, verdicts — is addressed by a 128-bit structural digest.
// The hash is a dual-lane FNV-1a (two independent 64-bit lanes with
// distinct offset bases) finished through a splitmix64-style avalanche;
// it is fast, dependency-free, stable across platforms and processes
// (no pointer values, no std::hash, no ASLR leakage), and 128 bits is
// far beyond birthday range for any realistic store population. It is
// NOT cryptographic — the store trusts its own directory, it defends
// against corruption and staleness, not against an adversary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace ecucsp::store {

struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest&) const = default;
  /// Lexicographic; gives order-independent encodings a canonical order.
  bool operator<(const Digest& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 lowercase hex characters; the on-disk object name.
  std::string hex() const;
  /// Inverse of hex(); returns false on malformed input.
  static bool parse(std::string_view text, Digest& out);
};

struct DigestHash {
  std::size_t operator()(const Digest& d) const {
    return static_cast<std::size_t>(d.hi ^ d.lo);
  }
};

/// Streaming hasher. Feed typed tokens (every primitive is framed with a
/// tag byte, so "" + "ab" and "a" + "b" digest differently) and finish().
class Hasher {
 public:
  Hasher();

  Hasher& bytes(const void* data, std::size_t n);
  Hasher& u8(std::uint8_t v);
  Hasher& u32(std::uint32_t v);
  Hasher& u64(std::uint64_t v);
  Hasher& i64(std::int64_t v);
  /// Length-framed string.
  Hasher& str(std::string_view s);
  /// Digest-of-digest (composing sub-object digests into a key).
  Hasher& digest(const Digest& d);

  Digest finish() const;

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

/// One-shot digest of a byte string (source files, serialized payloads).
Digest digest_bytes(std::string_view data);

}  // namespace ecucsp::store
