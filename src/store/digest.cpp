#include "store/digest.hpp"

namespace ecucsp::store {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// Lane A uses the standard FNV-1a offset basis; lane B a distinct one so
// the lanes decorrelate even though they consume identical input.
constexpr std::uint64_t kBasisA = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kBasisB = 0x9ae16a3b2f90404fULL;

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: full avalanche over the lane state.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr char kHex[] = "0123456789abcdef";

void hex64(std::uint64_t v, std::string& out) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(v >> shift) & 0xF]);
  }
}

int unhex(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Digest::hex() const {
  std::string out;
  out.reserve(32);
  hex64(hi, out);
  hex64(lo, out);
  return out;
}

bool Digest::parse(std::string_view text, Digest& out) {
  if (text.size() != 32) return false;
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 16; ++i) {
    const int d = unhex(text[static_cast<std::size_t>(i)]);
    if (d < 0) return false;
    hi = (hi << 4) | static_cast<std::uint64_t>(d);
  }
  for (int i = 16; i < 32; ++i) {
    const int d = unhex(text[static_cast<std::size_t>(i)]);
    if (d < 0) return false;
    lo = (lo << 4) | static_cast<std::uint64_t>(d);
  }
  out = Digest{hi, lo};
  return true;
}

Hasher::Hasher() : a_(kBasisA), b_(kBasisB) {}

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    a_ = (a_ ^ p[i]) * kFnvPrime;
    b_ = (b_ ^ p[i]) * kFnvPrime;
    // Cross-feed a rotated bit of the other lane so the two lanes do not
    // stay a fixed xor apart (plain dual FNV-1a lanes would).
    b_ ^= a_ >> 47;
  }
  return *this;
}

Hasher& Hasher::u8(std::uint8_t v) { return bytes(&v, 1); }

Hasher& Hasher::u32(std::uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return u8(0x01).bytes(buf, sizeof buf);
}

Hasher& Hasher::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return u8(0x02).bytes(buf, sizeof buf);
}

Hasher& Hasher::i64(std::int64_t v) {
  return u8(0x03).u64(static_cast<std::uint64_t>(v));
}

Hasher& Hasher::str(std::string_view s) {
  u8(0x04).u64(s.size());
  return bytes(s.data(), s.size());
}

Hasher& Hasher::digest(const Digest& d) {
  return u8(0x05).u64(d.hi).u64(d.lo);
}

Digest Hasher::finish() const {
  // Finalize each lane over both lane states so every input bit reaches
  // both output words.
  return Digest{mix64(a_ ^ mix64(b_)), mix64(b_ + mix64(a_))};
}

Digest digest_bytes(std::string_view data) {
  Hasher h;
  h.str(data);
  return h.finish();
}

}  // namespace ecucsp::store
