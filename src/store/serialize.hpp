// Versioned binary serialization for store artifacts.
//
// Three artifact kinds are stored: compiled LTSes, check verdicts
// (CheckResult incl. counterexample), and learned hypothesis automata
// (ArtifactKind::LearnedModel; encoded by src/learn over the same
// ByteWriter/seal envelope). The first two are Context-bound in memory
// (EventIds, ProcessRefs), so the wire format replaces every EventId with
// its (channel name, field values) spelling and decodes by re-interning
// into the caller's Context — decoding into a Context whose model declares
// the same channels reproduces the exact in-memory artifact.
//
// Format discipline:
//   * every payload is wrapped in an envelope: magic, kStoreFormatVersion,
//     a kind byte, the payload length, the payload, and a trailing digest
//     of the payload;
//   * loads verify all of it and throw SerializeError on any mismatch —
//     the store layer turns that into a cache miss, never a crash;
//   * any change to the encoding bumps kStoreFormatVersion, which also
//     participates in every cache key, so stale-format objects are simply
//     never looked up (and unreadable if addressed directly).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "refine/check.hpp"
#include "refine/lts.hpp"
#include "store/digest.hpp"

namespace ecucsp::store {

/// Bump on any wire-format or digest-scheme change.
inline constexpr std::uint32_t kStoreFormatVersion = 3;  // v3: pruned flag

enum class ArtifactKind : std::uint8_t {
  Lts = 1,
  Verdict = 2,
  /// A hypothesis automaton produced by the active learner (src/learn):
  /// plain string-event edges, not Context-bound — the learner encodes and
  /// decodes the payload itself (learn/cache.cpp) and only borrows the
  /// envelope (magic/version/kind/digest) from seal()/unseal(). A new kind
  /// byte is not a wire-format change for existing artifacts, so the
  /// format version stays put.
  LearnedModel = 3,
};

class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what)
      : std::runtime_error("store decode: " + what) {}
};

/// Little-endian byte sink: varint-coded unsigned ints, zigzag signed,
/// length-framed strings.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void uv(std::uint64_t v);    // varint
  void iv(std::int64_t v);     // zigzag varint
  void str(std::string_view s);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a decoded payload; throws SerializeError on
/// truncation or malformed varints.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint64_t uv();
  std::int64_t iv();
  std::string str();
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t tell() const { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Wrap `payload` in the versioned, digest-sealed envelope.
std::vector<std::uint8_t> seal(ArtifactKind kind,
                               std::vector<std::uint8_t> payload);

/// Verify magic/version/kind/length/digest; returns the payload view into
/// `blob`. Throws SerializeError on any mismatch.
std::span<const std::uint8_t> unseal(ArtifactKind kind,
                                     std::span<const std::uint8_t> blob);

// --- values and events -------------------------------------------------------

void encode_value(ByteWriter& w, const Context& ctx, const Value& v);
Value decode_value(ByteReader& r, Context& ctx);

void encode_event(ByteWriter& w, const Context& ctx, EventId e);
/// Re-interns by channel name + fields; throws SerializeError if the
/// channel is unknown or the fields lie outside its declared domains.
EventId decode_event(ByteReader& r, Context& ctx);

void encode_event_set(ByteWriter& w, const Context& ctx, const EventSet& es);
EventSet decode_event_set(ByteReader& r, Context& ctx);

// --- LTS ---------------------------------------------------------------------

/// Payload encoding (no envelope). term_of is reduced to one bit per state
/// (Omega or not) — the only structural use downstream (deadlock checking
/// distinguishes termination from deadlock); decode synthesises Omega/Stop
/// terms accordingly, so richer per-state diagnostics do not survive a
/// round-trip.
std::vector<std::uint8_t> encode_lts(const Context& ctx, const Lts& lts);
Lts decode_lts(ByteReader& r, Context& ctx);

/// Envelope convenience: seal/unseal + payload encode/decode.
std::vector<std::uint8_t> seal_lts(const Context& ctx, const Lts& lts);
Lts unseal_lts(std::span<const std::uint8_t> blob, Context& ctx);

// --- check verdicts ----------------------------------------------------------

std::vector<std::uint8_t> encode_check(const Context& ctx,
                                       const CheckResult& r);
CheckResult decode_check(ByteReader& r, Context& ctx);

std::vector<std::uint8_t> seal_check(const Context& ctx, const CheckResult& r);
CheckResult unseal_check(std::span<const std::uint8_t> blob, Context& ctx);

}  // namespace ecucsp::store
