// Context-independent structural digests of process terms.
//
// A term's digest must be identical across Contexts, processes and runs
// whenever the term is structurally the same model — EventIds, Symbols and
// ProcessRef pointers are all per-Context accidents, so the digest is
// computed over *names*: channel names, symbol spellings, field values,
// and the operator structure of the (hash-consed) term DAG.
//
// Named recursion is digested by unfolding: a Var node contributes its
// name/argument tuple and the digest of its resolved body. While a body is
// being digested, re-entering the same (name, args) contributes a
// back-reference marker instead — the usual mu-binder treatment — so
// recursive definitions terminate and two models differing only inside a
// definition body get different digests (editing one CAPL handler changes
// exactly the digests of the terms that unfold through it).
//
// A TermDigester memoises per ProcessRef *within one Context*; construct
// one per Context (or per check) and never share across Contexts — the
// memo keys on arena pointers.
#pragma once

#include <unordered_map>

#include "core/context.hpp"
#include "store/digest.hpp"

namespace ecucsp::store {

class TermDigester {
 public:
  explicit TermDigester(Context& ctx) : ctx_(ctx) {}

  Digest term(ProcessRef p);
  Digest event(EventId e);
  Digest value(const Value& v);
  Digest event_set(const EventSet& es);

 private:
  /// Feeds p's digest into h; returns the depth of the outermost still-open
  /// recursion binder the subtree back-referenced (kClosed when none), which
  /// gates memoisation — see the comment in the implementation.
  int feed_term(Hasher& h, ProcessRef p);
  void feed_event(Hasher& h, EventId e);
  void feed_value(Hasher& h, const Value& v);
  void feed_event_set(Hasher& h, const EventSet& es);

  Context& ctx_;
  std::unordered_map<ProcessRef, Digest> memo_;  // closed nodes only
  std::unordered_map<EventId, Digest> event_memo_;
  std::unordered_map<ProcessRef, int> open_;  // Var nodes being unfolded -> depth
};

/// One-shot convenience.
Digest digest_term(Context& ctx, ProcessRef p);

}  // namespace ecucsp::store
