#include "store/object_store.hpp"

#include <algorithm>
#include <cstdio>
#include <system_error>

namespace ecucsp::store {

namespace fs = std::filesystem;

ObjectStore::ObjectStore(fs::path dir) : dir_(std::move(dir)) {}

fs::path ObjectStore::path_of(const Digest& key) const {
  const std::string hex = key.hex();
  return dir_ / "objects" / hex.substr(0, 2) / hex.substr(2);
}

std::optional<std::vector<std::uint8_t>> ObjectStore::get(const Digest& key) {
  const fs::path path = path_of(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::vector<std::uint8_t> blob;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(blob.size(), std::memory_order_relaxed);
  return blob;
}

bool ObjectStore::put(const Digest& key, const std::vector<std::uint8_t>& blob) {
  const fs::path path = path_of(key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) return false;

  // Unique temp name per (store instance, put) so two threads or processes
  // writing the same key race only at the atomic rename, where either
  // winner leaves an identical, complete object.
  const std::uint64_t seq =
      tmp_counter_.fetch_add(1, std::memory_order_relaxed);
  const fs::path tmp = path.parent_path() /
                       (".tmp." + std::to_string(seq) + "." +
                        std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const std::size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != blob.size() || !flushed) {
    fs::remove(tmp, ec);
    return false;
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(blob.size(), std::memory_order_relaxed);
  return true;
}

void ObjectStore::drop(const Digest& key) {
  std::error_code ec;
  if (fs::remove(path_of(key), ec) && !ec) {
    stats_.corrupt_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ObjectStore::trim(std::uint64_t max_bytes) {
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  const fs::path root = dir_ / "objects";
  if (!fs::exists(root, ec) || ec) return 0;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec) || ec) continue;
    Entry e;
    e.path = it->path();
    e.mtime = fs::last_write_time(e.path, ec);
    if (ec) continue;
    e.size = static_cast<std::uint64_t>(fs::file_size(e.path, ec));
    if (ec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= max_bytes) return 0;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::size_t evicted = 0;
  for (const Entry& e : entries) {
    if (total <= max_bytes) break;
    if (fs::remove(e.path, ec) && !ec) {
      total -= e.size;
      ++evicted;
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return evicted;
}

}  // namespace ecucsp::store
