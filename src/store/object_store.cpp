#include "store/object_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <system_error>

namespace ecucsp::store {

namespace fs = std::filesystem;

namespace {

/// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool fsync_retry(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

/// fsync a directory so a rename into it survives a crash. Failure is
/// non-fatal for the cache (worst case the object vanishes on power loss,
/// which is just a future miss) but we report it for the put() contract.
bool fsync_dir(const fs::path& dir) {
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  const bool ok = fsync_retry(fd);
  while (::close(fd) != 0 && errno == EINTR) {
  }
  return ok;
}

}  // namespace

ObjectStore::ObjectStore(fs::path dir) : dir_(std::move(dir)) {}

fs::path ObjectStore::path_of(const Digest& key) const {
  const std::string hex = key.hex();
  return dir_ / "objects" / hex.substr(0, 2) / hex.substr(2);
}

std::optional<std::vector<std::uint8_t>> ObjectStore::get(const Digest& key) {
  const fs::path path = path_of(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::vector<std::uint8_t> blob;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(blob.size(), std::memory_order_relaxed);
  return blob;
}

bool ObjectStore::put(const Digest& key, const std::vector<std::uint8_t>& blob) {
  const fs::path path = path_of(key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) return false;

  // Unique temp name per (store instance, put) so two threads or processes
  // writing the same key race only at the atomic rename, where either
  // winner leaves an identical, complete object.
  const std::uint64_t seq =
      tmp_counter_.fetch_add(1, std::memory_order_relaxed);
  const fs::path tmp = path.parent_path() /
                       (".tmp." + std::to_string(seq) + "." +
                        std::to_string(reinterpret_cast<std::uintptr_t>(this)));

  // Durable sequence: write + fsync the temp file, rename into place, then
  // fsync the parent directory — without the last step a crash after
  // rename can leave the *name* unrecorded and a reopened store would miss
  // an object it had reported stored. Every syscall retries EINTR.
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  const bool wrote =
      write_all(fd, blob.data(), blob.size()) && fsync_retry(fd);
  while (::close(fd) != 0 && errno == EINTR) {
  }
  if (!wrote) {
    fs::remove(tmp, ec);
    return false;
  }
  int renamed;
  do {
    renamed = ::rename(tmp.c_str(), path.c_str());
  } while (renamed != 0 && errno == EINTR);
  if (renamed != 0) {
    fs::remove(tmp, ec);
    return false;
  }
  if (!fsync_dir(path.parent_path())) return false;
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(blob.size(), std::memory_order_relaxed);
  return true;
}

void ObjectStore::drop(const Digest& key) {
  std::error_code ec;
  if (fs::remove(path_of(key), ec) && !ec) {
    stats_.corrupt_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ObjectStore::trim(std::uint64_t max_bytes) {
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  const fs::path root = dir_ / "objects";
  if (!fs::exists(root, ec) || ec) return 0;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec) || ec) continue;
    Entry e;
    e.path = it->path();
    e.mtime = fs::last_write_time(e.path, ec);
    if (ec) continue;
    e.size = static_cast<std::uint64_t>(fs::file_size(e.path, ec));
    if (ec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= max_bytes) return 0;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::size_t evicted = 0;
  for (const Entry& e : entries) {
    if (total <= max_bytes) break;
    if (fs::remove(e.path, ec) && !ec) {
      total -= e.size;
      ++evicted;
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return evicted;
}

}  // namespace ecucsp::store
