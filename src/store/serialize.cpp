#include "store/serialize.hpp"

#include <unordered_map>

namespace ecucsp::store {

namespace {

constexpr std::uint8_t kMagic[4] = {'E', 'C', 'S', 'P'};

constexpr std::uint8_t kEvTau = 0;
constexpr std::uint8_t kEvTick = 1;
constexpr std::uint8_t kEvUser = 2;

void put_u64_raw(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64_raw(std::span<const std::uint8_t> b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[at + i]) << (8 * i);
  return v;
}

}  // namespace

void ByteWriter::uv(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::iv(std::int64_t v) {
  uv((static_cast<std::uint64_t>(v) << 1) ^
     static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  uv(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::u8() {
  if (pos_ >= data_.size()) throw SerializeError("truncated payload");
  return data_[pos_++];
}

std::uint64_t ByteReader::uv() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) return v;
  }
  throw SerializeError("overlong varint");
}

std::int64_t ByteReader::iv() {
  const std::uint64_t z = uv();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::string ByteReader::str() {
  const std::uint64_t n = uv();
  if (n > data_.size() - pos_) throw SerializeError("truncated string");
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

std::vector<std::uint8_t> seal(ArtifactKind kind,
                               std::vector<std::uint8_t> payload) {
  const Digest d = digest_bytes(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size()));
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 32);
  out.insert(out.end(), kMagic, kMagic + 4);
  ByteWriter head;
  head.uv(kStoreFormatVersion);
  head.u8(static_cast<std::uint8_t>(kind));
  head.uv(payload.size());
  out.insert(out.end(), head.bytes().begin(), head.bytes().end());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64_raw(out, d.hi);
  put_u64_raw(out, d.lo);
  return out;
}

std::span<const std::uint8_t> unseal(ArtifactKind kind,
                                     std::span<const std::uint8_t> blob) {
  if (blob.size() < 4 || !std::equal(kMagic, kMagic + 4, blob.begin())) {
    throw SerializeError("bad magic");
  }
  ByteReader head(blob.subspan(4));
  if (head.uv() != kStoreFormatVersion) throw SerializeError("format version mismatch");
  if (head.u8() != static_cast<std::uint8_t>(kind)) throw SerializeError("artifact kind mismatch");
  const std::uint64_t len = head.uv();
  const std::size_t consumed = 4 + head.tell();
  if (len > blob.size() || blob.size() < consumed + len + 16) {
    throw SerializeError("truncated envelope");
  }
  const auto payload = blob.subspan(consumed, static_cast<std::size_t>(len));
  const Digest want{get_u64_raw(blob, consumed + len),
                    get_u64_raw(blob, consumed + len + 8)};
  const Digest got = digest_bytes(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size()));
  if (!(want == got)) throw SerializeError("payload digest mismatch");
  if (blob.size() != consumed + len + 16) throw SerializeError("trailing garbage");
  return payload;
}

// --- values and events -------------------------------------------------------

void encode_value(ByteWriter& w, const Context& ctx, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Int:
      w.u8(0);
      w.iv(v.as_int());
      return;
    case Value::Kind::Sym:
      w.u8(1);
      w.str(ctx.symbols().name(v.as_sym()));
      return;
    case Value::Kind::Tuple: {
      w.u8(2);
      const auto& fields = v.as_tuple();
      w.uv(fields.size());
      for (const Value& f : fields) encode_value(w, ctx, f);
      return;
    }
  }
}

Value decode_value(ByteReader& r, Context& ctx) {
  switch (r.u8()) {
    case 0:
      return Value::integer(r.iv());
    case 1:
      return Value::symbol(ctx.sym(r.str()));
    case 2: {
      const std::uint64_t n = r.uv();
      std::vector<Value> fields;
      fields.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) fields.push_back(decode_value(r, ctx));
      return Value::tuple(std::move(fields));
    }
    default:
      throw SerializeError("unknown value kind");
  }
}

void encode_event(ByteWriter& w, const Context& ctx, EventId e) {
  if (e == TAU) {
    w.u8(kEvTau);
    return;
  }
  if (e == TICK) {
    w.u8(kEvTick);
    return;
  }
  w.u8(kEvUser);
  const ChannelDecl& chan = ctx.channel_decl(ctx.event_channel(e));
  w.str(ctx.symbols().name(chan.name));
  const auto& fields = ctx.event_fields(e);
  w.uv(fields.size());
  for (const Value& f : fields) encode_value(w, ctx, f);
}

EventId decode_event(ByteReader& r, Context& ctx) {
  switch (r.u8()) {
    case kEvTau:
      return TAU;
    case kEvTick:
      return TICK;
    case kEvUser:
      break;
    default:
      throw SerializeError("unknown event tag");
  }
  const std::string chan_name = r.str();
  const auto chan = ctx.find_channel(chan_name);
  if (!chan) throw SerializeError("unknown channel '" + chan_name + "'");
  const std::uint64_t n = r.uv();
  std::vector<Value> fields;
  fields.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) fields.push_back(decode_value(r, ctx));
  try {
    return ctx.event(*chan, std::move(fields));
  } catch (const ModelError& e) {
    throw SerializeError(std::string("event outside channel domain: ") +
                         e.what());
  }
}

void encode_event_set(ByteWriter& w, const Context& ctx, const EventSet& es) {
  w.uv(es.size());
  for (const EventId e : es) encode_event(w, ctx, e);
}

EventSet decode_event_set(ByteReader& r, Context& ctx) {
  const std::uint64_t n = r.uv();
  std::vector<EventId> events;
  events.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) events.push_back(decode_event(r, ctx));
  return EventSet(std::move(events));
}

// --- LTS ---------------------------------------------------------------------

std::vector<std::uint8_t> encode_lts(const Context& ctx, const Lts& lts) {
  ByteWriter w;
  // Event table in order of first appearance; transitions reference it by
  // index so each event's (channel, fields) spelling is written once.
  std::unordered_map<EventId, std::uint64_t> index;
  std::vector<EventId> table;
  for (const auto& ts : lts.succ) {
    for (const LtsTransition& t : ts) {
      if (index.emplace(t.event, table.size()).second) table.push_back(t.event);
    }
  }
  w.uv(table.size());
  for (const EventId e : table) encode_event(w, ctx, e);

  w.uv(lts.succ.size());
  w.uv(lts.root);
  for (StateId s = 0; s < lts.state_count(); ++s) {
    // Compiled machines carry their omega record as plain data; only
    // hand-built ones (which keep their Context alive) fall back to terms.
    const bool omega = s < lts.omega.size()
                           ? lts.omega[s]
                           : s < lts.term_of.size() && lts.term_of[s] &&
                                 lts.term_of[s]->op() == Op::Omega;
    w.u8(omega ? 1 : 0);
    w.uv(lts.succ[s].size());
    for (const LtsTransition& t : lts.succ[s]) {
      w.uv(index.at(t.event));
      w.uv(t.target);
    }
  }
  return w.take();
}

Lts decode_lts(ByteReader& r, Context& ctx) {
  const std::uint64_t table_size = r.uv();
  std::vector<EventId> table;
  table.reserve(static_cast<std::size_t>(table_size));
  for (std::uint64_t i = 0; i < table_size; ++i) table.push_back(decode_event(r, ctx));

  const std::uint64_t n = r.uv();
  if (n == 0) throw SerializeError("empty LTS");
  Lts lts;
  const std::uint64_t root = r.uv();
  if (root >= n) throw SerializeError("root out of range");
  lts.root = static_cast<StateId>(root);
  lts.succ.resize(static_cast<std::size_t>(n));
  lts.term_of.resize(static_cast<std::size_t>(n));
  lts.omega.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t s = 0; s < n; ++s) {
    const std::uint8_t omega = r.u8();
    if (omega > 1) throw SerializeError("bad omega flag");
    lts.omega.push_back(omega != 0);
    lts.term_of[static_cast<std::size_t>(s)] =
        omega ? ctx.omega() : ctx.stop();
    const std::uint64_t k = r.uv();
    auto& ts = lts.succ[static_cast<std::size_t>(s)];
    ts.reserve(static_cast<std::size_t>(k));
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t ev = r.uv();
      const std::uint64_t target = r.uv();
      if (ev >= table.size()) throw SerializeError("event index out of range");
      if (target >= n) throw SerializeError("transition target out of range");
      ts.push_back(LtsTransition{table[static_cast<std::size_t>(ev)],
                                 static_cast<StateId>(target)});
    }
  }
  return lts;
}

std::vector<std::uint8_t> seal_lts(const Context& ctx, const Lts& lts) {
  return seal(ArtifactKind::Lts, encode_lts(ctx, lts));
}

Lts unseal_lts(std::span<const std::uint8_t> blob, Context& ctx) {
  ByteReader r(unseal(ArtifactKind::Lts, blob));
  Lts lts = decode_lts(r, ctx);
  if (!r.at_end()) throw SerializeError("trailing bytes in LTS payload");
  return lts;
}

// --- check verdicts ----------------------------------------------------------

std::vector<std::uint8_t> encode_check(const Context& ctx,
                                       const CheckResult& res) {
  ByteWriter w;
  w.u8(res.passed ? 1 : 0);
  w.u8(res.vacuous ? 1 : 0);
  w.u8(res.pruned ? 1 : 0);
  w.u8(res.counterexample ? 1 : 0);
  if (res.counterexample) {
    const Counterexample& c = *res.counterexample;
    w.u8(static_cast<std::uint8_t>(c.kind));
    w.uv(c.trace.size());
    for (const EventId e : c.trace) encode_event(w, ctx, e);
    encode_event(w, ctx, c.event);
    encode_event_set(w, ctx, c.impl_acceptance);
  }
  w.uv(res.stats.impl_states);
  w.uv(res.stats.impl_transitions);
  w.uv(res.stats.spec_states);
  w.uv(res.stats.spec_norm_nodes);
  w.uv(res.stats.product_states);
  return w.take();
}

CheckResult decode_check(ByteReader& r, Context& ctx) {
  CheckResult res;
  const std::uint8_t passed = r.u8();
  if (passed > 1) throw SerializeError("bad passed flag");
  res.passed = passed == 1;
  const std::uint8_t vacuous = r.u8();
  if (vacuous > 1) throw SerializeError("bad vacuous flag");
  res.vacuous = vacuous == 1;
  const std::uint8_t pruned = r.u8();
  if (pruned > 1) throw SerializeError("bad pruned flag");
  res.pruned = pruned == 1;
  const std::uint8_t has_cex = r.u8();
  if (has_cex > 1) throw SerializeError("bad counterexample flag");
  if (has_cex) {
    Counterexample c;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(Counterexample::Kind::Nondeterminism)) {
      throw SerializeError("bad counterexample kind");
    }
    c.kind = static_cast<Counterexample::Kind>(kind);
    const std::uint64_t n = r.uv();
    c.trace.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) c.trace.push_back(decode_event(r, ctx));
    c.event = decode_event(r, ctx);
    c.impl_acceptance = decode_event_set(r, ctx);
    res.counterexample = std::move(c);
  }
  res.stats.impl_states = static_cast<std::size_t>(r.uv());
  res.stats.impl_transitions = static_cast<std::size_t>(r.uv());
  res.stats.spec_states = static_cast<std::size_t>(r.uv());
  res.stats.spec_norm_nodes = static_cast<std::size_t>(r.uv());
  res.stats.product_states = static_cast<std::size_t>(r.uv());
  return res;
}

std::vector<std::uint8_t> seal_check(const Context& ctx,
                                     const CheckResult& res) {
  return seal(ArtifactKind::Verdict, encode_check(ctx, res));
}

CheckResult unseal_check(std::span<const std::uint8_t> blob, Context& ctx) {
  ByteReader r(unseal(ArtifactKind::Verdict, blob));
  CheckResult res = decode_check(r, ctx);
  if (!r.at_end()) throw SerializeError("trailing bytes in verdict payload");
  return res;
}

}  // namespace ecucsp::store
