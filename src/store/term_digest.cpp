#include "store/term_digest.hpp"

#include <algorithm>
#include <limits>

namespace ecucsp::store {

namespace {

// Per-construct framing tags. Part of the digest format: renumbering them
// invalidates every stored key, which is exactly what bumping
// kStoreFormatVersion does anyway.
enum Tag : std::uint8_t {
  kInt = 1,
  kSym = 2,
  kTuple = 3,
  kEvent = 4,
  kTau = 5,
  kTick = 6,
  kEventSet = 7,
  kOpBase = 0x10,     // + static_cast<uint8_t>(Op)
  kVarBackRef = 0x40,
  kRename = 0x41,
};

constexpr int kClosed = std::numeric_limits<int>::max();

}  // namespace

Digest TermDigester::term(ProcessRef p) {
  Hasher h;
  feed_term(h, p);
  return h.finish();
}

Digest TermDigester::event(EventId e) {
  if (auto it = event_memo_.find(e); it != event_memo_.end()) return it->second;
  Hasher h;
  feed_event(h, e);
  const Digest d = h.finish();
  event_memo_.emplace(e, d);
  return d;
}

Digest TermDigester::value(const Value& v) {
  Hasher h;
  feed_value(h, v);
  return h.finish();
}

Digest TermDigester::event_set(const EventSet& es) {
  Hasher h;
  feed_event_set(h, es);
  return h.finish();
}

void TermDigester::feed_value(Hasher& h, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Int:
      h.u8(kInt).i64(v.as_int());
      return;
    case Value::Kind::Sym:
      h.u8(kSym).str(ctx_.symbols().name(v.as_sym()));
      return;
    case Value::Kind::Tuple: {
      const std::vector<Value>& fields = v.as_tuple();
      h.u8(kTuple).u64(fields.size());
      for (const Value& f : fields) feed_value(h, f);
      return;
    }
  }
}

void TermDigester::feed_event(Hasher& h, EventId e) {
  if (e == TAU) {
    h.u8(kTau);
    return;
  }
  if (e == TICK) {
    h.u8(kTick);
    return;
  }
  const ChannelDecl& chan = ctx_.channel_decl(ctx_.event_channel(e));
  h.u8(kEvent).str(ctx_.symbols().name(chan.name));
  const std::vector<Value>& fields = ctx_.event_fields(e);
  h.u64(fields.size());
  for (const Value& f : fields) feed_value(h, f);
}

void TermDigester::feed_event_set(Hasher& h, const EventSet& es) {
  // EventSets are sorted by EventId, which is an interning-order accident;
  // sort the per-event digests so the set digest is Context-independent.
  std::vector<Digest> ds;
  ds.reserve(es.size());
  for (const EventId e : es) ds.push_back(event(e));
  std::sort(ds.begin(), ds.end());
  h.u8(kEventSet).u64(ds.size());
  for (const Digest& d : ds) h.digest(d);
}

int TermDigester::feed_term(Hasher& h, ProcessRef p) {
  // A node's digest is memoisable only if it is *closed*: digesting it
  // touched no recursion binder that is still open above this position
  // (otherwise the memoised digest would bake a back-reference in and leak
  // it to positions where the binder is not open). feed_term returns the
  // depth of the outermost open binder the subtree referenced, or kClosed.
  //
  // Symmetrically, memo *lookups* are only sound while no binder is open:
  // under an open binder a fresh traversal of a node that references that
  // binder emits back-reference bytes, while its memoised digest (computed
  // standalone) unfolds it — hitting the memo there would make a node's
  // digest depend on what the digester saw earlier. Positions with open
  // binders are recomputed instead, so digests are pure in the term.
  if (open_.empty()) {
    if (auto it = memo_.find(p); it != memo_.end()) {
      h.digest(it->second);
      return kClosed;
    }
  }

  Hasher self;
  int min_ref = kClosed;
  self.u8(
      static_cast<std::uint8_t>(kOpBase + static_cast<std::uint8_t>(p->op())));
  switch (p->op()) {
    case Op::Stop:
    case Op::Skip:
    case Op::Omega:
      break;
    case Op::Prefix:
      self.digest(event(p->event()));
      min_ref = std::min(min_ref, feed_term(self, p->kid(0)));
      break;
    case Op::ExtChoice:
    case Op::IntChoice: {
      // Choice is commutative, and the Context constructors canonicalise
      // operand order by arena pointer — an allocation-order accident that
      // must not reach the digest. Sub-digest each operand and feed the
      // pair in digest order, so P [] Q and Q [] P hash identically no
      // matter which layout the arena picked.
      Hasher left, right;
      min_ref = std::min(min_ref, feed_term(left, p->kid(0)));
      min_ref = std::min(min_ref, feed_term(right, p->kid(1)));
      Digest a = left.finish();
      Digest b = right.finish();
      if (b < a) std::swap(a, b);
      self.digest(a);
      self.digest(b);
      break;
    }
    case Op::Seq:
    case Op::Interrupt:
    case Op::Sliding:
      min_ref = std::min(min_ref, feed_term(self, p->kid(0)));
      min_ref = std::min(min_ref, feed_term(self, p->kid(1)));
      break;
    case Op::Par:
      feed_event_set(self, p->events());
      min_ref = std::min(min_ref, feed_term(self, p->kid(0)));
      min_ref = std::min(min_ref, feed_term(self, p->kid(1)));
      break;
    case Op::Hide:
      feed_event_set(self, p->events());
      min_ref = std::min(min_ref, feed_term(self, p->kid(0)));
      break;
    case Op::Rename:
      self.u8(kRename).u64(p->renaming().size());
      for (const RenamePair& r : p->renaming()) {
        self.digest(event(r.from));
        self.digest(event(r.to));
      }
      min_ref = std::min(min_ref, feed_term(self, p->kid(0)));
      break;
    case Op::Var: {
      self.str(ctx_.symbols().name(p->var_name()));
      self.u64(p->var_args().size());
      for (const Value& a : p->var_args()) feed_value(self, a);
      if (auto it = open_.find(p); it != open_.end()) {
        // Recursive back-edge, identified by the name/args fed above.
        self.u8(kVarBackRef);
        h.digest(self.finish());
        return it->second;
      }
      const int depth = static_cast<int>(open_.size());
      open_.emplace(p, depth);
      const ProcessRef body = ctx_.resolve(p->var_name(), p->var_args());
      const int body_ref = feed_term(self, body);
      open_.erase(p);
      // References to this binder (or ones opened inside the body, which
      // have all closed again by now) are resolved here; only references
      // to binders opened *above* keep the node open.
      min_ref = body_ref < depth ? body_ref : kClosed;
      break;
    }
  }

  const Digest d = self.finish();
  if (min_ref == kClosed) memo_.emplace(p, d);
  h.digest(d);
  return min_ref;
}

Digest digest_term(Context& ctx, ProcessRef p) {
  TermDigester d(ctx);
  return d.term(p);
}

}  // namespace ecucsp::store
