// Two-tier incremental verification cache (the CheckCache implementation).
//
// Tier 1 is an in-process map of sealed blobs — shared by every worker
// thread of a batch run, so the fifteen cells of the OTA matrix compile
// each common subsystem LTS exactly once per process no matter the job
// count. Tier 2 is an optional on-disk ObjectStore, which makes verdicts
// survive the process: a rerun of an unchanged model hits every cell
// without a single state-space exploration.
//
// Both tiers store *sealed* envelopes (serialize.hpp), never decoded
// artifacts: decoded LTSes and verdicts are Context-bound, and workers
// each own a private Context. A lookup therefore decodes into the calling
// Context; any decode failure — foreign format version, truncation,
// bit-rot, a model whose channels changed shape — evicts the object and
// reports a miss.
//
// Keys are content digests: (artifact tag, kStoreFormatVersion, check
// op/model, state budget, structural term digests). Nothing per-Context
// or per-process leaks into a key, so caches are shareable across runs,
// processes and machines of the same endianness-independent format.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "refine/check.hpp"
#include "store/digest.hpp"
#include "store/object_store.hpp"

namespace ecucsp::store {

struct CacheStats {
  std::atomic<std::uint64_t> verdict_hits{0};
  std::atomic<std::uint64_t> verdict_misses{0};
  std::atomic<std::uint64_t> lts_hits{0};
  std::atomic<std::uint64_t> lts_misses{0};
  /// Hits broken down by serving tier (a disk hit is promoted to memory).
  std::atomic<std::uint64_t> memory_hits{0};
  std::atomic<std::uint64_t> disk_hits{0};
  std::atomic<std::uint64_t> stores{0};
  /// Sealed blobs that failed to decode and were evicted.
  std::atomic<std::uint64_t> decode_failures{0};
};

class VerificationCache final : public CheckCache {
 public:
  /// Memory-only when `dir` is empty; otherwise tier 2 persists under
  /// `dir` (created lazily on first store).
  ///
  /// `shards` splits both tiers by key digest: shard i keeps its own memory
  /// map + mutex (concurrent readers on different shards never contend) and
  /// its own disk subtree. shards == 1 keeps the original single-directory
  /// layout (`dir/objects/...`); shards > 1 places shard i's objects under
  /// `dir/shard-NN/objects/...`. shard_of() is a pure function of the key,
  /// so any process opening the directory with the same shard count finds
  /// every object — the layouts differ, the digests and blobs do not.
  explicit VerificationCache(
      std::optional<std::filesystem::path> dir = std::nullopt,
      unsigned shards = 1);

  // CheckCache interface — thread-safe, each call decodes into the
  // caller's Context.
  std::optional<CheckResult> lookup_check(Context& ctx, ProcessRef spec,
                                          ProcessRef impl, CheckOp op,
                                          Model model,
                                          std::size_t max_states) override;
  void store_check(Context& ctx, ProcessRef spec, ProcessRef impl, CheckOp op,
                   Model model, std::size_t max_states,
                   const CheckResult& result) override;
  std::optional<Lts> lookup_lts(Context& ctx, ProcessRef root,
                                std::size_t max_states) override;
  void store_lts(Context& ctx, ProcessRef root, std::size_t max_states,
                 const Lts& lts) override;

  /// Drop tier 1, keeping the disk store — lets one process simulate a
  /// cold restart against a warm directory (tests, benches).
  void clear_memory();

  /// Evict least-recently-used disk objects down to `max_bytes`.
  /// No-op (returns 0) for a memory-only cache.
  std::size_t trim(std::uint64_t max_bytes);

  const CacheStats& stats() const { return stats_; }
  /// Shard 0's disk store; null for a memory-only cache. With one shard
  /// (the default) this is *the* disk tier, exactly as before sharding.
  const ObjectStore* disk() const { return shards_[0]->disk.get(); }
  /// Shard i's disk store (i < shard_count()); null when memory-only.
  const ObjectStore* disk(unsigned shard) const {
    return shards_[shard]->disk.get();
  }
  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// Deterministic key → shard mapping (stable across processes/machines:
  /// a function of the digest bits only).
  static unsigned shard_of(const Digest& key, unsigned shards) {
    return shards <= 1 ? 0 : static_cast<unsigned>(key.hi % shards);
  }

  // Key derivation, exposed for tests asserting invalidation behaviour.
  static Digest check_key(Context& ctx, ProcessRef spec, ProcessRef impl,
                          CheckOp op, Model model, std::size_t max_states);
  static Digest lts_key(Context& ctx, ProcessRef root, std::size_t max_states);

 private:
  using Blob = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// One slice of both tiers; independent lock, map and disk subtree.
  struct Shard {
    std::mutex mu;
    std::unordered_map<Digest, Blob, DigestHash> memory;
    std::unique_ptr<ObjectStore> disk;
  };

  Shard& shard(const Digest& key) {
    return *shards_[shard_of(key, shard_count())];
  }

  /// Memory first, then disk (promoting a disk hit). Null on miss.
  Blob fetch(const Digest& key, bool& from_disk);
  void insert(const Digest& key, std::vector<std::uint8_t> blob);
  void evict(const Digest& key);

  std::vector<std::unique_ptr<Shard>> shards_;  // size ≥ 1, fixed at build
  CacheStats stats_;
};

/// Harvest counterexamples from a persistent store directory (both layouts
/// VerificationCache writes: <dir>/objects/<hex[0:2]>/<hex[2:]> and the
/// sharded <dir>/shard-NN/objects/...): every
/// object that decodes as a *failed* check verdict in `ctx` contributes
/// its violating trace, rendered to event names (for trace violations the
/// offending event is appended — it is the attack step). Objects that are
/// LTSes, foreign formats, or verdicts of models whose channels do not
/// exist in `ctx` are skipped silently; the store is a scavenging ground,
/// not a schema. Order is deterministic (sorted by object path).
///
/// This is what lets the conformance layer (src/conform) replay attacks
/// found by earlier verification runs as concrete tests against the
/// simulated ECU.
std::vector<std::vector<std::string>> scan_stored_counterexamples(
    const std::filesystem::path& dir, Context& ctx);

}  // namespace ecucsp::store
