// Control-flow graphs for CAPL event procedures and functions.
//
// One Cfg per procedure body: a synthetic Entry and Exit plus one node per
// executable statement. Branching statements (if/while/for/switch) become
// Branch nodes whose outgoing edges are labelled True/False (Case for
// switch dispatch), which is where the taint rules' path-sensitivity comes
// from — a sanitizing comparison only blesses the True side.
//
// The ProgramCfg bundles every procedure's graph with an interprocedural
// call graph over user-defined functions, resolved by name the way the
// CAPL runtime dispatches them. CFG nodes reference AST statements by
// pointer *and* by their stable pre-order node_id (capl/ast.hpp), so
// analyses can report reproducible references into the source.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "capl/ast.hpp"

namespace ecucsp::lint {

enum class CfgEdgeLabel : std::uint8_t {
  Fallthrough,  // unconditional successor
  True,         // branch condition held
  False,        // branch condition failed
  Case,         // switch dispatch into one arm (value match or default)
};

struct CfgEdge {
  std::size_t to = 0;
  CfgEdgeLabel label = CfgEdgeLabel::Fallthrough;
};

struct CfgNode {
  enum class Kind : std::uint8_t { Entry, Exit, Stmt, Branch };
  Kind kind = Kind::Stmt;
  /// The AST statement this node executes; null for Entry/Exit. For Branch
  /// nodes this is the if/while/for/switch statement and `cond` its
  /// controlling expression (null for a for-loop without a condition).
  const capl::CaplStmt* stmt = nullptr;
  const capl::CaplExpr* cond = nullptr;
  std::vector<CfgEdge> succ;
};

class Cfg {
 public:
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t entry() const { return 0; }
  std::size_t exit() const { return 1; }
  const CfgNode& node(std::size_t i) const { return nodes_[i]; }
  const std::vector<CfgEdge>& successors(std::size_t i) const {
    return nodes_[i].succ;
  }

 private:
  friend class CfgBuilder;
  std::vector<CfgNode> nodes_;
};

/// One call expression inside a procedure, resolved to a user function name
/// (builtins are not call-graph edges).
struct CallSite {
  const capl::CaplExpr* call = nullptr;
  std::string callee;
};

struct ProcCfg {
  /// Display label: "on message X" / "on timer t" / function name.
  std::string name;
  const capl::EventHandler* handler = nullptr;   // null for functions
  const capl::FunctionDecl* function = nullptr;  // null for handlers
  Cfg cfg;
  std::vector<CallSite> calls;  // user-function call sites, AST order
};

struct ProgramCfg {
  std::vector<ProcCfg> procs;  // handlers first (program order), then functions
  /// Index into `procs` by function name (handlers are not callable).
  std::map<std::string, std::size_t> function_index;

  /// procs-index lists: callees_of[i] = distinct procs called from procs[i],
  /// callers_of[i] = inverse. Deterministic (ascending) order.
  std::vector<std::vector<std::size_t>> callees_of;
  std::vector<std::vector<std::size_t>> callers_of;
};

/// Build the CFG for one procedure body (may be null → Entry→Exit only).
Cfg build_cfg(const capl::CaplStmt* body);

/// Build every procedure's CFG plus the call graph.
ProgramCfg build_program_cfg(const capl::CaplProgram& prog);

/// Human label for a handler ("on message UpdApplyReq", "on start", ...).
std::string handler_label(const capl::EventHandler& h);

}  // namespace ecucsp::lint
