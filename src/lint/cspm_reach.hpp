// Reachability/alphabet-flow analysis over CSP terms and CSPm scripts.
//
// Two over-approximations of "which events can this process ever perform",
// at two levels of the stack:
//
//   * reachable_events_over — TERM level: a fixpoint over the hash-consed
//     ProcessNode DAG (Var references expanded through Context::resolve,
//     which is memoised, so the walk is linear in the number of distinct
//     *instantiations*, never in the state space — a k-cycler network costs
//     k definitions here, not exponentially many product states). Hide
//     subtracts, Rename maps, everything else unions its operands; the
//     result is a superset of the compiled LTS's reachable alphabet.
//
//   * reachable_cspm_channels — SOURCE level: the channel names reachable
//     from a CSPm expression, following definition references transitively
//     (purely syntactic, no evaluation). This powers the S005 vacuous-
//     refinement lint.
//
// The term-level set is what verified matrix pruning (src/verify/prune.hpp)
// compares against the specification's constrained alphabet: over-
// approximation on the implementation side makes "predicted vacuous PASS"
// sound — the prediction can only fail towards running the real check.
#pragma once

#include <set>
#include <string>

#include "core/context.hpp"
#include "cspm/ast.hpp"

namespace ecucsp::lint {

/// Superset of the events `p` can ever perform (TICK included when any
/// reachable component may terminate; TAU never included). Expands Var
/// nodes via ctx.resolve, so unresolvable references throw ModelError just
/// as compilation would.
EventSet reachable_events_over(Context& ctx, ProcessRef p);

/// Every Name/Call identifier mentioned in `e` (transitively through its
/// sub-expressions, fields, generators, renames and let-bindings).
void collect_cspm_names(const cspm::Expr* e, std::set<std::string>& out);

/// Channel names syntactically reachable from `e`, following the script's
/// definition references transitively.
std::set<std::string> reachable_cspm_channels(const cspm::Script& script,
                                              const cspm::Expr* e);

}  // namespace ecucsp::lint
