// Worklist-driven dataflow solving over small join-semilattices.
//
// Two solver shapes cover every flow analysis in the lint pass:
//   * solve_forward — classic forward dataflow over an edge-labelled CFG
//     (taint/T0xx rules): node transfer + edge transfer, fixpoint by
//     chaotic iteration with a deterministic (lowest-index-first) worklist,
//     so results are byte-stable across runs.
//   * solve_equations — a generic monotone equation system X_i = F_i(X)
//     (interprocedural call-graph summaries, CSPm reachable-event sets):
//     re-evaluates an unknown whenever one of its dependencies grew.
// Both terminate for monotone transfer functions over finite-height
// lattices; the small lattice helpers below (set-union, bool-or) are the
// building blocks the analyses compose their domains from.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

namespace ecucsp::lint {

/// Deterministic worklist: pop always returns the smallest queued index, and
/// an index is queued at most once. Lowest-first iteration makes fixpoint
/// results independent of the order in which facts happened to change.
class Worklist {
 public:
  explicit Worklist(std::size_t size) : queued_(size, false) {}

  void push(std::size_t i);
  bool empty() const { return pending_.empty(); }
  std::size_t pop();

 private:
  std::set<std::size_t> pending_;
  std::vector<bool> queued_;
};

// --- lattice helpers ---------------------------------------------------------

/// Join-by-set-union; returns true when `into` grew.
template <typename T>
bool join_union(std::set<T>& into, const std::set<T>& from) {
  bool changed = false;
  for (const T& v : from) changed |= into.insert(v).second;
  return changed;
}

/// Join-by-disjunction; returns true when `into` flipped to true.
inline bool join_or(bool& into, bool from) {
  const bool changed = from && !into;
  into = into || from;
  return changed;
}

// --- solvers -----------------------------------------------------------------

/// Forward dataflow over a graph given as per-node successor edge lists.
///
///   Graph   — exposes node_count(), entry(), and for a node n a range of
///             edge descriptors via successors(n); each edge has a .to.
///   join    — bool join(Value& into, const Value& from): merge, report growth.
///   fnode   — Value fnode(std::size_t node, const Value& in): node transfer.
///   fedge   — Value fedge(std::size_t from, const Edge& e, const Value& out):
///             edge transfer (where path-sensitivity lives: branch-true vs
///             branch-false see their own facts).
///
/// Returns the in-value of every node (the state *before* its transfer);
/// unreachable nodes keep the default-constructed bottom value.
template <typename Value, typename Graph, typename Join, typename FNode,
          typename FEdge>
std::vector<Value> solve_forward(const Graph& g, Value entry_value, Join join,
                                 FNode fnode, FEdge fedge) {
  std::vector<Value> in(g.node_count());
  std::vector<bool> reached(g.node_count(), false);
  in[g.entry()] = std::move(entry_value);
  reached[g.entry()] = true;

  Worklist work(g.node_count());
  work.push(g.entry());
  while (!work.empty()) {
    const std::size_t n = work.pop();
    const Value out = fnode(n, in[n]);
    for (const auto& e : g.successors(n)) {
      Value v = fedge(n, e, out);
      if (!reached[e.to]) {
        reached[e.to] = true;
        in[e.to] = std::move(v);
        work.push(e.to);
      } else if (join(in[e.to], v)) {
        work.push(e.to);
      }
    }
  }
  return in;
}

/// Monotone equation system X_i = F_i(X). `deps_of[i]` lists the unknowns j
/// that read X_i (i.e. must be re-evaluated when X_i grows). `eval` computes
/// F_i from the current assignment; `join` merges it into X_i and reports
/// growth. All unknowns are evaluated at least once.
template <typename Value, typename Join, typename Eval>
std::vector<Value> solve_equations(
    std::size_t n, const std::vector<std::vector<std::size_t>>& deps_of,
    Join join, Eval eval) {
  std::vector<Value> x(n);
  Worklist work(n);
  for (std::size_t i = 0; i < n; ++i) work.push(i);
  while (!work.empty()) {
    const std::size_t i = work.pop();
    Value next = eval(i, x);
    if (join(x[i], next)) {
      for (const std::size_t j : deps_of[i]) work.push(j);
    }
  }
  return x;
}

}  // namespace ecucsp::lint
