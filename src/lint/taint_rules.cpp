// Interprocedural CAPL taint/dataflow rules (T0xx).
//
// Built on the CFG builder (cfg.hpp) and the worklist solver (dataflow.hpp):
// a forward, path-aware taint analysis per event procedure, composed with
// context-insensitive function summaries solved to fixpoint over the call
// graph.
//
//   sources     received frame data: any payload access through 'this'
//               ('this.byte(i)', 'this.<signal>', ...) inside an
//               'on message' procedure, propagated through assignments,
//               arithmetic, message-variable payload writes and user
//               function calls;
//   sinks       output() (bus transmission) and — for T002 — writes to
//               global state (the persistent effects a forged frame must
//               not reach);
//   sanitizers  branch conditions that consult the triggering frame's
//               MAC/auth signal, and more generally any branch that
//               inspects tainted data (an equality/freshness validation).
//
// The rules:
//   T001  tainted data reaches output() on a path with no validation;
//   T002  the handler of a MAC-carrying frame reaches a sink on a path
//         that never consulted the MAC field (DropGuard on the OTA ECU's
//         MAC check flips the handler from clean to exactly this);
//   T003  a freshness counter is ordering-compared against received data
//         but not advanced on the accepting path before the procedure
//         exits (replay window).
// Every diagnostic carries the full source→sink ChainStep trail.
//
// Direction of approximation: reported paths are CFG-feasible but not
// necessarily executable (classic may-analysis over-approximation), while
// the *absence* of a report is meaningful only for the modelled
// sources/sinks — see DESIGN.md §14 for the soundness discussion shared
// with the CSPm pruner.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint.hpp"

namespace ecucsp::lint {

namespace {

using capl::CaplExpr;
using capl::CaplProgram;
using capl::CaplStmt;
using capl::CaplType;
using capl::CBinOp;
using capl::CExprKind;
using capl::CStmtKind;
using capl::EventHandler;

/// Intermediate chain steps are capped; the final sink step is always kept
/// (reports append it directly), so a chain is never truncated at the sink.
constexpr std::size_t kMaxChainSteps = 6;

Span span_of(const CaplExpr* e, int length = 1) {
  return Span{e->line, e->column > 0 ? e->column : 1, length > 0 ? length : 1};
}

Span span_of(const CaplStmt* s) {
  return Span{s->line, s->column > 0 ? s->column : 1, 1};
}

bool is_scalar(CaplType t) {
  return t != CaplType::Message && t != CaplType::MsTimer &&
         t != CaplType::Timer;
}

bool is_ordering(CBinOp op) {
  return op == CBinOp::Lt || op == CBinOp::Gt || op == CBinOp::Le ||
         op == CBinOp::Ge;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Does this DBC signal look like an authenticator? Matches the SecOC-style
/// naming the case studies use (MacTag, AuthCode, Cmac, ...).
bool is_mac_signal(const can::DbcSignal& sig) {
  const std::string n = lower(sig.spec.name);
  return n.find("mac") != std::string::npos ||
         n.find("auth") != std::string::npos ||
         (n.size() >= 3 && n.compare(n.size() - 3, 3, "tag") == 0);
}

/// Payload byte range [first, last] covered by a signal (both byte orders
/// approximated by the containing span — exact enough for "does this byte
/// access touch the MAC field").
std::pair<int, int> signal_bytes(const can::SignalSpec& spec) {
  const int first = spec.start_bit / 8;
  const int last = (spec.start_bit + spec.length - 1) / 8;
  return {std::min(first, last), std::max(first, last)};
}

// --- the dataflow domain -----------------------------------------------------

/// Provenance trail; ordered lexicographically so joins can pick one chain
/// deterministically (the smallest), independent of visit order.
struct Chain {
  std::vector<ChainStep> steps;

  void append(Span span, std::string note) {
    if (steps.size() >= kMaxChainSteps) return;
    steps.push_back({span, std::move(note)});
  }

  friend bool operator<(const Chain& a, const Chain& b) {
    const std::size_t n = std::min(a.steps.size(), b.steps.size());
    for (std::size_t i = 0; i < n; ++i) {
      const ChainStep& x = a.steps[i];
      const ChainStep& y = b.steps[i];
      if (x.span.line != y.span.line) return x.span.line < y.span.line;
      if (x.span.column != y.span.column) return x.span.column < y.span.column;
      if (x.note != y.note) return x.note < y.note;
    }
    return a.steps.size() < b.steps.size();
  }
  friend bool operator==(const Chain& a, const Chain& b) {
    return !(a < b) && !(b < a);
  }
};

struct Taint {
  bool tainted = false;               // derived from received data
  std::set<std::size_t> from_params;  // summary mode: tainted iff these are
  Chain chain;

  bool any() const { return tainted || !from_params.empty(); }
};

/// Join `from` into `into`; true when `into` changed.
bool join_taint(Taint& into, const Taint& from) {
  bool changed = join_or(into.tainted, from.tainted);
  changed |= join_union(into.from_params, from.from_params);
  if (from.any() && from.chain < into.chain &&
      (into.chain.steps.empty() || !(into.chain == from.chain))) {
    into.chain = from.chain;
    changed = true;
  }
  if (into.any() && into.chain.steps.empty() && !from.chain.steps.empty()) {
    into.chain = from.chain;
    changed = true;
  }
  return changed;
}

struct Env {
  /// Reachability: only the entry starts live; join is disjunction. Reports
  /// are suppressed for dead states (e.g. code after 'return').
  bool live = false;
  std::map<std::string, Taint> vars;  // scalars and message variables alike
  /// Must-information (join = conjunction over live paths): every path into
  /// this point consulted the MAC field / inspected tainted input.
  bool mac_checked = false;
  bool validated = false;
  /// T003 obligations: counter -> provenance of the passed check.
  std::map<std::string, Chain> fresh;
};

bool join_env(Env& into, const Env& from) {
  if (!from.live) return false;  // nothing flows in from a dead path
  bool changed = false;
  if (!into.live) {
    into = from;
    return true;
  }
  changed |= join_or(into.live, from.live);
  for (const auto& [name, taint] : from.vars) {
    changed |= join_taint(into.vars[name], taint);
  }
  if (into.mac_checked && !from.mac_checked) {
    into.mac_checked = false;
    changed = true;
  }
  if (into.validated && !from.validated) {
    into.validated = false;
    changed = true;
  }
  for (const auto& [name, chain] : from.fresh) {
    const auto it = into.fresh.find(name);
    if (it == into.fresh.end()) {
      into.fresh.emplace(name, chain);
      changed = true;
    } else if (chain < it->second) {
      it->second = chain;
      changed = true;
    }
  }
  return changed;
}

// --- function summaries ------------------------------------------------------

struct FnSummary {
  /// Parameter indices whose value reaches output() inside the function
  /// (directly or through further calls), with a representative inner sink
  /// chain to splice into the caller's report.
  std::map<std::size_t, Chain> sink_params;
  /// Return value is derived from these parameter indices.
  std::set<std::size_t> return_params;

  bool merge(const FnSummary& o) {
    bool changed = false;
    for (const auto& [idx, chain] : o.sink_params) {
      const auto it = sink_params.find(idx);
      if (it == sink_params.end()) {
        sink_params.emplace(idx, chain);
        changed = true;
      } else if (chain < it->second) {
        it->second = chain;
        changed = true;
      }
    }
    changed |= join_union(return_params, o.return_params);
    return changed;
  }
};

// --- the per-procedure analysis ---------------------------------------------

class ProcAnalysis {
 public:
  ProcAnalysis(const ProgramCfg& pcfg, std::size_t proc_index,
               const can::DbcMessage* trigger,
               const std::map<std::string, CaplType>& globals,
               const std::vector<FnSummary>& summaries, const std::string& file)
      : pcfg_(pcfg),
        proc_(pcfg.procs[proc_index]),
        trigger_(trigger),
        globals_(globals),
        summaries_(summaries),
        file_(file) {
    if (trigger_) {
      for (const auto& sig : trigger_->signals) {
        if (is_mac_signal(sig)) {
          mac_signal_ = &sig;
          break;
        }
      }
    }
    if (proc_.function) {
      for (std::size_t i = 0; i < proc_.function->params.size(); ++i) {
        param_index_[proc_.function->params[i].second] = i;
      }
    }
  }

  /// Solve the procedure to fixpoint; report into `sink` (null in summary
  /// mode) and return the function summary accumulated along the way.
  FnSummary run(DiagnosticSink* sink) {
    summary_ = FnSummary{};
    const Cfg& cfg = proc_.cfg;

    Env entry;
    entry.live = true;
    if (proc_.function) {
      for (const auto& [name, idx] : param_index_) {
        Taint t;
        t.from_params.insert(idx);
        entry.vars[name] = t;
      }
    }

    const std::vector<Env> in = solve_forward<Env>(
        cfg, std::move(entry),
        [](Env& into, const Env& from) { return join_env(into, from); },
        [this](std::size_t n, const Env& env) { return transfer(n, env); },
        [this](std::size_t from, const CfgEdge& e, const Env& out) {
          return edge_transfer(from, e, out);
        });

    // Reporting pass over the solved states: emit diagnostics and summary
    // facts exactly once per node, from the fixpoint in-values.
    sink_ = sink;
    reporting_ = true;
    for (std::size_t n = 0; n < cfg.node_count(); ++n) {
      if (!in[n].live) continue;
      if (cfg.node(n).kind == CfgNode::Kind::Exit) {
        report_exit(in[n]);
      } else {
        (void)transfer(n, in[n]);
      }
    }
    reporting_ = false;
    sink_ = nullptr;
    return summary_;
  }

 private:
  bool in_message_handler() const {
    return proc_.handler && proc_.handler->kind == EventHandler::Kind::Message;
  }

  bool is_global(const std::string& name) const {
    return globals_.count(name) > 0;
  }

  bool is_global_scalar(const std::string& name) const {
    const auto it = globals_.find(name);
    return it != globals_.end() && is_scalar(it->second);
  }

  // --- expression classification --------------------------------------------

  /// Does `e` read the triggering frame's MAC field ('this.byte(i)' inside
  /// the MAC signal's bytes, or 'this.<MacSignal>')?
  bool reads_mac_field(const CaplExpr* e) const {
    if (!e || !mac_signal_) return false;
    const bool on_this = e->object && e->object->kind == CExprKind::This;
    if (e->kind == CExprKind::Member && on_this &&
        e->text == mac_signal_->spec.name) {
      return true;
    }
    if (e->kind == CExprKind::ByteAccess && on_this && !e->args.empty()) {
      const CaplExpr* idx = e->args[0].get();
      if (idx->kind == CExprKind::Number) {
        // byte/word/dword indices are in access-width units (see C005).
        const auto [first, last] = signal_bytes(mac_signal_->spec);
        const std::int64_t from_byte = idx->number * e->access_width;
        const std::int64_t to_byte = from_byte + e->access_width - 1;
        if (to_byte >= first && from_byte <= last) return true;
      } else {
        return true;  // dynamic index: assume it may touch the MAC field
      }
    }
    for (const auto& arg : e->args) {
      if (reads_mac_field(arg.get())) return true;
    }
    return e->object && reads_mac_field(e->object.get());
  }

  /// Global scalar names read anywhere inside `e` (T003 counter candidates).
  void collect_global_scalars(const CaplExpr* e,
                              std::set<std::string>& out) const {
    if (!e) return;
    if (e->kind == CExprKind::Name && is_global_scalar(e->text)) {
      out.insert(e->text);
    }
    for (const auto& arg : e->args) collect_global_scalars(arg.get(), out);
    collect_global_scalars(e->object.get(), out);
  }

  /// Payload description for a source step ("this.byte(7)", "this.ModuleId").
  static std::string source_text(const CaplExpr* e) {
    if (e->kind == CExprKind::ByteAccess) {
      std::string idx = "?";
      if (!e->args.empty() && e->args[0]->kind == CExprKind::Number) {
        idx = std::to_string(e->args[0]->number);
      }
      const char* unit = e->access_width == 1   ? "byte"
                         : e->access_width == 2 ? "word"
                                                : "dword";
      return "this." + std::string(unit) + "(" + idx + ")";
    }
    return "this." + e->text;
  }

  Taint eval(const CaplExpr* e, const Env& env) const {
    Taint t;
    if (!e) return t;
    switch (e->kind) {
      case CExprKind::Number:
      case CExprKind::CharLit:
      case CExprKind::StringLit:
        return t;
      case CExprKind::This:
        if (in_message_handler()) {  // e.g. output(this)
          t.tainted = true;
          t.chain.append(span_of(e, 4), "received frame used directly");
        }
        return t;
      case CExprKind::Name: {
        const auto it = env.vars.find(e->text);
        if (it != env.vars.end()) return it->second;
        return t;
      }
      case CExprKind::Member:
      case CExprKind::ByteAccess: {
        const CaplExpr* base = e->object.get();
        if (base && base->kind == CExprKind::This && in_message_handler()) {
          t.tainted = true;
          const int len = e->text.empty() ? 1 : int(e->text.size());
          t.chain.append(span_of(e, len), "value read from received frame (" +
                                              source_text(e) + ")");
          return t;
        }
        // Reading out of a tainted message variable's payload.
        if (base && base->kind == CExprKind::Name) {
          const auto it = env.vars.find(base->text);
          if (it != env.vars.end()) t = it->second;
        }
        for (const auto& arg : e->args) join_taint(t, eval(arg.get(), env));
        return t;
      }
      case CExprKind::Call: {
        Taint out;
        std::vector<Taint> args;
        args.reserve(e->args.size());
        for (const auto& arg : e->args) args.push_back(eval(arg.get(), env));
        const auto fi = pcfg_.function_index.find(e->text);
        if (fi != pcfg_.function_index.end()) {
          for (const std::size_t p : summaries_[fi->second].return_params) {
            if (p < args.size()) join_taint(out, args[p]);
          }
          return out;
        }
        // Builtins: timeNow() is clean; anything else conservatively
        // forwards its arguments' taint.
        if (e->text == "timeNow") return out;
        for (Taint& a : args) join_taint(out, a);
        return out;
      }
      case CExprKind::Binary:
      case CExprKind::Unary: {
        Taint out;
        for (const auto& arg : e->args) join_taint(out, eval(arg.get(), env));
        return out;
      }
    }
    return t;
  }

  // --- transfer functions ----------------------------------------------------

  Env transfer(std::size_t n, const Env& in) {
    const CfgNode& node = proc_.cfg.node(n);
    Env env = in;
    switch (node.kind) {
      case CfgNode::Kind::Entry:
      case CfgNode::Kind::Exit:
        return env;
      case CfgNode::Kind::Branch:
        if (node.cond) {
          visit_calls(node.cond, env);
          if (reads_mac_field(node.cond)) {
            // Consulting the MAC field counts whichever way the branch
            // goes: guard style (then-body) and early-out style (if !=
            // return) both validate the continuing path.
            env.mac_checked = true;
            env.validated = true;
          } else if (eval(node.cond, env).any()) {
            env.validated = true;
          }
        }
        return env;
      case CfgNode::Kind::Stmt:
        return transfer_stmt(node.stmt, std::move(env));
    }
    return env;
  }

  /// Path-sensitivity: the accepting (True) edge of an ordering comparison
  /// between a global counter and received data opens a T003 obligation.
  Env edge_transfer(std::size_t from, const CfgEdge& e, const Env& out) {
    const CfgNode& node = proc_.cfg.node(from);
    if (node.kind != CfgNode::Kind::Branch || !node.cond ||
        e.label != CfgEdgeLabel::True) {
      return out;
    }
    const CaplExpr* cond = node.cond;
    if (cond->kind != CExprKind::Binary || !is_ordering(cond->bin) ||
        cond->args.size() != 2 || reads_mac_field(cond)) {
      return out;
    }
    Env env = out;
    for (int side = 0; side < 2; ++side) {
      const CaplExpr* counter_side = cond->args[side].get();
      const CaplExpr* data_side = cond->args[1 - side].get();
      const Taint data = eval(data_side, env);
      if (!data.tainted) continue;
      std::set<std::string> counters;
      collect_global_scalars(counter_side, counters);
      for (const std::string& g : counters) {
        if (env.fresh.count(g)) continue;
        Chain chain = data.chain;
        chain.append(span_of(cond),
                     "freshness check against counter '" + g + "' passes");
        env.fresh.emplace(g, std::move(chain));
      }
    }
    return env;
  }

  Env transfer_stmt(const CaplStmt* s, Env env) {
    if (!s) return env;
    switch (s->kind) {
      case CStmtKind::VarDecl:
        if (s->init) {
          visit_calls(s->init.get(), env);
          Taint t = eval(s->init.get(), env);
          if (t.any()) {
            t.chain.append(span_of(s), "copied into '" + s->var_name + "'");
          }
          env.vars[s->var_name] = std::move(t);
        }
        break;
      case CStmtKind::ExprStmt:
        if (s->expr) {
          visit_calls(s->expr.get(), env);
          check_output(s->expr.get(), env);
        }
        break;
      case CStmtKind::Assign:
        if (s->value) visit_calls(s->value.get(), env);
        apply_assign(s, env);
        break;
      case CStmtKind::IncDec:
        apply_incdec(s, env);
        break;
      case CStmtKind::Return:
        if (s->value) {
          visit_calls(s->value.get(), env);
          if (proc_.function) {
            FnSummary delta;
            delta.return_params = eval(s->value.get(), env).from_params;
            summary_.merge(delta);
          }
        }
        break;
      default:
        break;
    }
    return env;
  }

  void apply_assign(const CaplStmt* s, Env& env) {
    const CaplExpr* lv = s->lvalue.get();
    if (!lv || !s->value) return;
    Taint rhs = eval(s->value.get(), env);
    const bool compound = s->assign_op != 0;  // += / -= keep the old taint

    if (lv->kind == CExprKind::Name) {
      const std::string& name = lv->text;
      if (rhs.any()) {
        rhs.chain.append(span_of(s), "copied into '" + name + "'");
      }
      Taint& slot = env.vars[name];
      if (compound) {
        join_taint(slot, rhs);
      } else {
        slot = std::move(rhs);
      }
      note_global_write(name, span_of(s), env);
      env.fresh.erase(name);  // the counter advanced
      return;
    }

    // Payload write into a message object: m.byte(i) = e / m.Sig = e.
    if ((lv->kind == CExprKind::ByteAccess || lv->kind == CExprKind::Member) &&
        lv->object && lv->object->kind == CExprKind::Name) {
      const std::string& msg_var = lv->object->text;
      if (rhs.any()) {
        rhs.chain.append(span_of(s),
                         "written into outgoing frame '" + msg_var + "'");
        join_taint(env.vars[msg_var], rhs);
      }
      note_global_write(msg_var, span_of(s), env);
    }
  }

  void apply_incdec(const CaplStmt* s, Env& env) {
    const CaplExpr* lv = s->lvalue.get();
    if (!lv || lv->kind != CExprKind::Name) return;
    note_global_write(lv->text, span_of(s), env);
    env.fresh.erase(lv->text);
  }

  /// A write to global state: the persistent effect a forged frame must not
  /// reach, so a T002 sink alongside transmission.
  void note_global_write(const std::string& name, Span span, const Env& env) {
    if (!is_global(name)) return;
    report_mac_bypass(span, "global '" + name + "' is written", env);
  }

  // --- sinks and reports -----------------------------------------------------

  /// Walk an expression for user-function calls: a tainted actual passed to
  /// a parameter that reaches output() inside the callee is a T001 sink at
  /// the call site.
  void visit_calls(const CaplExpr* e, const Env& env) {
    if (!e) return;
    if (e->kind == CExprKind::Call) {
      const auto fi = pcfg_.function_index.find(e->text);
      if (fi != pcfg_.function_index.end()) {
        for (const auto& [param, inner] : summaries_[fi->second].sink_params) {
          if (param >= e->args.size()) continue;
          Taint arg = eval(e->args[param].get(), env);
          if (!arg.any()) continue;
          Chain chain = arg.chain;
          chain.append(span_of(e, int(e->text.size())),
                       "passed to parameter " + std::to_string(param + 1) +
                           " of '" + e->text + "()'");
          for (const ChainStep& step : inner.steps) {
            chain.append(step.span, step.note);
          }
          report_taint_to_bus(span_of(e, int(e->text.size())), arg.tainted,
                              arg.from_params, chain, env);
        }
      }
    }
    for (const auto& arg : e->args) visit_calls(arg.get(), env);
    if (e->object) visit_calls(e->object.get(), env);
  }

  /// output(x): the canonical bus sink (T001 for tainted x, T002 for any
  /// transmission on an unchecked path).
  void check_output(const CaplExpr* e, const Env& env) {
    if (e->kind != CExprKind::Call || e->text != "output" || e->args.empty()) {
      return;
    }
    const Span call_span = span_of(e, 6);
    report_mac_bypass(call_span, "a frame is transmitted", env);

    const CaplExpr* a = e->args[0].get();
    const Taint arg = eval(a, env);
    if (!arg.any()) return;
    Chain chain = arg.chain;
    const std::string what = a->kind == CExprKind::Name
                                 ? "frame '" + a->text + "'"
                                 : "the received frame";
    chain.steps.push_back(
        {call_span, what + " reaches the bus via output()"});
    report_taint_to_bus(call_span, arg.tainted, arg.from_params, chain, env);
  }

  void report_taint_to_bus(Span span, bool tainted,
                           const std::set<std::size_t>& from_params,
                           const Chain& chain, const Env& env) {
    if (env.validated) return;  // a validation guards this path
    if (tainted && reporting_ && sink_) {
      Diagnostic d;
      d.rule = std::string(kRuleTaintToBus);
      d.severity = Severity::Warning;
      d.file = file_;
      d.span = span;
      d.message = "in '" + proc_.name +
                  "': received data reaches the bus without validation";
      d.chain = chain.steps;
      sink_->add(std::move(d));
    }
    // Summary mode: parameters that reach this sink unvalidated.
    if (proc_.function) {
      for (const std::size_t p : from_params) {
        FnSummary delta;
        delta.sink_params.emplace(p, chain);
        summary_.merge(delta);
      }
    }
  }

  void report_mac_bypass(Span span, const std::string& what, const Env& env) {
    if (!mac_signal_ || env.mac_checked) return;
    if (!reporting_ || !sink_) return;
    Diagnostic d;
    d.rule = std::string(kRuleMacBypass);
    d.severity = Severity::Warning;
    d.file = file_;
    d.span = span;
    d.message = "in '" + proc_.name + "': " + what +
                " although the MAC signal '" + mac_signal_->spec.name +
                "' of frame '" + trigger_->name + "' was never checked";
    d.chain.push_back(
        {Span{proc_.handler->line,
              proc_.handler->column > 0 ? proc_.handler->column : 1, 1},
         "frame '" + trigger_->name + "' carries MAC signal '" +
             mac_signal_->spec.name + "'"});
    d.chain.push_back({span, what + " on a path with no MAC check"});
    sink_->add(std::move(d));
  }

  void report_exit(const Env& env) {
    if (!reporting_ || !sink_) return;
    for (const auto& [name, chain] : env.fresh) {
      Diagnostic d;
      d.rule = std::string(kRuleStaleFreshness);
      d.severity = Severity::Warning;
      d.file = file_;
      d.span = chain.steps.empty() ? Span{0, 1, 1} : chain.steps.back().span;
      d.message = "in '" + proc_.name + "': freshness counter '" + name +
                  "' is checked but never advanced on the accepting path";
      d.chain = chain.steps;
      d.chain.push_back({d.span, "the procedure can exit with '" + name +
                                     "' unchanged (replay window)"});
      sink_->add(std::move(d));
    }
  }

  const ProgramCfg& pcfg_;
  const ProcCfg& proc_;
  const can::DbcMessage* trigger_;
  const std::map<std::string, CaplType>& globals_;
  const std::vector<FnSummary>& summaries_;
  const std::string& file_;
  const can::DbcSignal* mac_signal_ = nullptr;
  std::map<std::string, std::size_t> param_index_;

  DiagnosticSink* sink_ = nullptr;
  FnSummary summary_;
  bool reporting_ = false;
};

}  // namespace

void lint_capl_taint(const capl::CaplProgram& prog, const can::DbcDatabase* db,
                     const std::string& file, DiagnosticSink& sink) {
  const ProgramCfg pcfg = build_program_cfg(prog);

  std::map<std::string, CaplType> globals;
  for (const auto& v : prog.variables) globals.emplace(v.name, v.type);

  const auto trigger_of = [&](const ProcCfg& p) -> const can::DbcMessage* {
    if (!db || !p.handler || p.handler->kind != EventHandler::Kind::Message) {
      return nullptr;
    }
    if (!p.handler->target.empty()) {
      return db->find_message(p.handler->target);
    }
    if (p.handler->msg_id >= 0) {
      return db->find_message(can::CanId(p.handler->msg_id));
    }
    return nullptr;
  };

  // Phase 1: function summaries to fixpoint over the call graph. Evaluating
  // proc i re-reads its callees' summaries, so a callee that grew requeues
  // its callers (callers_of is exactly that dependency edge).
  const std::vector<FnSummary> summaries = solve_equations<FnSummary>(
      pcfg.procs.size(), pcfg.callers_of,
      [](FnSummary& into, const FnSummary& from) { return into.merge(from); },
      [&](std::size_t i, const std::vector<FnSummary>& current) {
        if (!pcfg.procs[i].function) return FnSummary{};
        return ProcAnalysis(pcfg, i, nullptr, globals, current, file)
            .run(nullptr);
      });

  // Phase 2: analyze every procedure with the final summaries and report.
  for (std::size_t i = 0; i < pcfg.procs.size(); ++i) {
    ProcAnalysis(pcfg, i, trigger_of(pcfg.procs[i]), globals, summaries, file)
        .run(&sink);
  }
}

}  // namespace ecucsp::lint
