#include "lint/cfg.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

namespace ecucsp::lint {

using capl::CaplExpr;
using capl::CaplProgram;
using capl::CaplStmt;
using capl::CExprKind;
using capl::CStmtKind;
using capl::EventHandler;

// Defined at namespace scope (not in the anonymous namespace) so it matches
// Cfg's friend declaration.
class CfgBuilder {
 public:
  Cfg build(const CaplStmt* body) {
    add_node(CfgNode::Kind::Entry, nullptr, nullptr);
    add_node(CfgNode::Kind::Exit, nullptr, nullptr);
    Pending out = build_stmt(body, {{cfg_.entry(), CfgEdgeLabel::Fallthrough}});
    wire(out, cfg_.exit());
    return std::move(cfg_);
  }

 private:
  /// Dangling out-edges waiting for their target node.
  using Pending = std::vector<std::pair<std::size_t, CfgEdgeLabel>>;

  std::size_t add_node(CfgNode::Kind kind, const CaplStmt* stmt,
                       const CaplExpr* cond) {
    CfgNode n;
    n.kind = kind;
    n.stmt = stmt;
    n.cond = cond;
    cfg_.nodes_.push_back(std::move(n));
    return cfg_.nodes_.size() - 1;
  }

  void wire(const Pending& from, std::size_t to) {
    for (const auto& [node, label] : from) {
      cfg_.nodes_[node].succ.push_back({to, label});
    }
  }

  Pending build_seq(const std::vector<capl::CaplStmtPtr>& body, Pending in) {
    for (const auto& kid : body) in = build_stmt(kid.get(), std::move(in));
    return in;
  }

  Pending build_stmt(const CaplStmt* s, Pending in) {
    if (!s) return in;
    switch (s->kind) {
      case CStmtKind::Block:
      case CStmtKind::Case:  // bare Case outside a switch: plain sequence
        return build_seq(s->body, std::move(in));

      case CStmtKind::VarDecl:
      case CStmtKind::ExprStmt:
      case CStmtKind::Assign:
      case CStmtKind::IncDec: {
        const std::size_t n = add_node(CfgNode::Kind::Stmt, s, nullptr);
        wire(in, n);
        return {{n, CfgEdgeLabel::Fallthrough}};
      }

      case CStmtKind::Return: {
        const std::size_t n = add_node(CfgNode::Kind::Stmt, s, nullptr);
        wire(in, n);
        cfg_.nodes_[n].succ.push_back({cfg_.exit(), CfgEdgeLabel::Fallthrough});
        return {};
      }

      case CStmtKind::Break: {
        const std::size_t n = add_node(CfgNode::Kind::Stmt, s, nullptr);
        wire(in, n);
        if (!break_stack_.empty()) {
          break_stack_.back().push_back({n, CfgEdgeLabel::Fallthrough});
        } else {
          // Break outside any loop/switch: treat as procedure exit so the
          // graph stays connected (the parser tolerates this form).
          cfg_.nodes_[n].succ.push_back({cfg_.exit(), CfgEdgeLabel::Fallthrough});
        }
        return {};
      }

      case CStmtKind::If: {
        const std::size_t b = add_node(CfgNode::Kind::Branch, s, s->value.get());
        wire(in, b);
        Pending out =
            build_stmt(s->then_branch.get(), {{b, CfgEdgeLabel::True}});
        if (s->else_branch) {
          Pending e =
              build_stmt(s->else_branch.get(), {{b, CfgEdgeLabel::False}});
          out.insert(out.end(), e.begin(), e.end());
        } else {
          out.push_back({b, CfgEdgeLabel::False});
        }
        return out;
      }

      case CStmtKind::While: {
        const std::size_t b = add_node(CfgNode::Kind::Branch, s, s->value.get());
        wire(in, b);
        break_stack_.emplace_back();
        Pending body = build_stmt(s->loop_body.get(), {{b, CfgEdgeLabel::True}});
        wire(body, b);
        Pending out = std::move(break_stack_.back());
        break_stack_.pop_back();
        out.push_back({b, CfgEdgeLabel::False});
        return out;
      }

      case CStmtKind::For: {
        in = build_stmt(s->for_init.get(), std::move(in));
        const std::size_t b = add_node(CfgNode::Kind::Branch, s, s->value.get());
        wire(in, b);
        break_stack_.emplace_back();
        Pending body = build_stmt(s->loop_body.get(), {{b, CfgEdgeLabel::True}});
        body = build_stmt(s->for_step.get(), std::move(body));
        wire(body, b);
        Pending out = std::move(break_stack_.back());
        break_stack_.pop_back();
        // Without a condition the only way past the loop is a break.
        if (s->value) out.push_back({b, CfgEdgeLabel::False});
        return out;
      }

      case CStmtKind::Switch: {
        const std::size_t b = add_node(CfgNode::Kind::Branch, s, s->value.get());
        wire(in, b);
        break_stack_.emplace_back();
        Pending fall;  // fallthrough from the previous arm's last statement
        bool has_default = false;
        for (const auto& arm : s->body) {
          if (arm->kind != CStmtKind::Case) continue;
          has_default = has_default || arm->delta == 1;
          Pending arm_in = std::move(fall);
          arm_in.push_back({b, CfgEdgeLabel::Case});
          fall = build_seq(arm->body, std::move(arm_in));
        }
        Pending out = std::move(break_stack_.back());
        break_stack_.pop_back();
        out.insert(out.end(), fall.begin(), fall.end());
        // No default arm: the dispatch itself may skip every case.
        if (!has_default) out.push_back({b, CfgEdgeLabel::Fallthrough});
        return out;
      }
    }
    return in;
  }

  Cfg cfg_;
  std::vector<Pending> break_stack_;
};

namespace {

/// Collect user-function call sites in deterministic AST order.
class CallCollector {
 public:
  CallCollector(const std::set<std::string>& functions,
                std::vector<CallSite>& out)
      : functions_(functions), out_(out) {}

  void stmt(const CaplStmt* s) {
    if (!s) return;
    for (const auto& kid : s->body) stmt(kid.get());
    expr(s->init.get());
    expr(s->lvalue.get());
    expr(s->value.get());
    stmt(s->then_branch.get());
    stmt(s->else_branch.get());
    stmt(s->for_init.get());
    stmt(s->loop_body.get());
    stmt(s->for_step.get());
    expr(s->expr.get());
  }

  void expr(const CaplExpr* e) {
    if (!e) return;
    if (e->kind == CExprKind::Call && functions_.count(e->text)) {
      out_.push_back({e, e->text});
    }
    for (const auto& arg : e->args) expr(arg.get());
    expr(e->object.get());
  }

 private:
  const std::set<std::string>& functions_;
  std::vector<CallSite>& out_;
};

}  // namespace

std::string handler_label(const EventHandler& h) {
  switch (h.kind) {
    case EventHandler::Kind::Start:
      return "on start";
    case EventHandler::Kind::StopMeasurement:
      return "on stopMeasurement";
    case EventHandler::Kind::Key:
      return "on key " + h.target;
    case EventHandler::Kind::Timer:
      return "on timer " + h.target;
    case EventHandler::Kind::Message:
      if (h.any_message) return "on message *";
      if (!h.target.empty()) return "on message " + h.target;
      return "on message 0x" + [&] {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%llx",
                      static_cast<unsigned long long>(h.msg_id));
        return std::string(buf);
      }();
  }
  return "on ?";
}

Cfg build_cfg(const CaplStmt* body) { return CfgBuilder().build(body); }

ProgramCfg build_program_cfg(const CaplProgram& prog) {
  ProgramCfg out;
  std::set<std::string> fn_names;
  for (const auto& fn : prog.functions) fn_names.insert(fn.name);

  for (const auto& h : prog.handlers) {
    ProcCfg p;
    p.name = handler_label(h);
    p.handler = &h;
    p.cfg = build_cfg(h.body.get());
    CallCollector(fn_names, p.calls).stmt(h.body.get());
    out.procs.push_back(std::move(p));
  }
  for (const auto& fn : prog.functions) {
    ProcCfg p;
    p.name = fn.name;
    p.function = &fn;
    p.cfg = build_cfg(fn.body.get());
    CallCollector(fn_names, p.calls).stmt(fn.body.get());
    // First definition wins on duplicate names, matching find_function().
    out.function_index.emplace(fn.name, out.procs.size());
    out.procs.push_back(std::move(p));
  }

  out.callees_of.resize(out.procs.size());
  out.callers_of.resize(out.procs.size());
  for (std::size_t i = 0; i < out.procs.size(); ++i) {
    std::set<std::size_t> callees;
    for (const CallSite& c : out.procs[i].calls) {
      const auto it = out.function_index.find(c.callee);
      if (it != out.function_index.end()) callees.insert(it->second);
    }
    out.callees_of[i].assign(callees.begin(), callees.end());
    for (const std::size_t j : out.callees_of[i]) {
      out.callers_of[j].push_back(i);
    }
  }
  return out;
}

}  // namespace ecucsp::lint
