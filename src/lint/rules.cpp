#include "lint/rules.hpp"

namespace ecucsp::lint {

namespace {

constexpr RuleInfo kRules[] = {
    {kRuleParseError, Severity::Error,
     "input does not lex/parse; the analyzers cannot run on this file"},

    {kRuleCaplDuplicateHandler, Severity::Error,
     "two event procedures handle the same event (message/timer/key/start)"},
    {kRuleCaplUnknownMessage, Severity::Error,
     "handler or declaration references a message absent from the CANdb"},
    {kRuleCaplUnknownSignal, Severity::Error,
     "member access names a signal the CANdb does not define on that message"},
    {kRuleCaplSignalOverflow, Severity::Warning,
     "constant written to a signal cannot fit the signal's declared bit width"},
    {kRuleCaplByteIndexRange, Severity::Warning,
     "byte/word/dword access reaches past the message's DLC"},
    {kRuleCaplUnreachableCode, Severity::Warning,
     "statement is unreachable (follows return/break in the same block)"},
    {kRuleCaplUndefinedName, Severity::Error,
     "name resolves to no variable, parameter, function or builtin"},
    {kRuleCaplThisOutsideHandler, Severity::Error,
     "'this' used outside an 'on message' event procedure"},
    {kRuleCaplDuplicateVariable, Severity::Warning,
     "variable name declared more than once in the same scope"},

    {kRuleDbcSignalExceedsDlc, Severity::Error,
     "signal bits extend past the message's DLC payload"},
    {kRuleDbcSignalOverlap, Severity::Error,
     "two signals of one message occupy overlapping bit ranges"},
    {kRuleDbcDuplicateMessageId, Severity::Error,
     "two messages share one CAN identifier"},
    {kRuleDbcDuplicateSignal, Severity::Warning,
     "message defines two signals with the same name"},

    {kRuleCspmUndefinedName, Severity::Error,
     "name is neither declared (channel/datatype/nametype/definition) nor "
     "bound nor a builtin"},
    {kRuleCspmNotAChannel, Severity::Error,
     "prefix head ('x -> P') is not a declared channel event"},
    {kRuleCspmUnusedDefinition, Severity::Warning,
     "process definition is never referenced by any definition or assertion"},
    {kRuleCspmUnguardedRecursion, Severity::Warning,
     "definition can recurse into itself without an intervening event "
     "prefix; the engine would reject or diverge on it"},
    {kRuleCspmVacuousRefinement, Severity::Warning,
     "refinement assertion whose implementation side shares no channel with "
     "the specification side; a PASS would be vacuous"},
    {kRuleCspmUnusedChannel, Severity::Warning,
     "channel is declared but never used by any definition or assertion"},

    {kRuleTaintToBus, Severity::Warning,
     "received payload flows to output() without passing a MAC/validation "
     "check on the way (unvalidated input forwarded to the bus)"},
    {kRuleMacBypass, Severity::Warning,
     "handler of a MAC-carrying frame reaches a transmission or global "
     "state change on a path that never checks the MAC field"},
    {kRuleStaleFreshness, Severity::Warning,
     "freshness counter is compared against received data but never "
     "advanced on the accepting path (replay window)"},
};

}  // namespace

std::span<const RuleInfo> all_rules() { return kRules; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

}  // namespace ecucsp::lint
