// The lint rule catalogue.
//
// Rule ids are STABLE: once shipped they are never renumbered or reused,
// so CI baselines, editor suppressions and the JSON schema stay valid
// across releases. Families:
//   E0xx  input-level failures (lex/parse errors surfaced as diagnostics)
//   C0xx  CAPL semantic checks
//   D0xx  CANdb (DBC) consistency checks
//   S0xx  CSPm / model checks (including refinement vacuity)
//   T0xx  CAPL taint/dataflow findings (CFG + worklist solver; every
//         diagnostic carries a source→sink chain)
// The full catalogue with examples lives in DESIGN.md.
#pragma once

#include <span>
#include <string_view>

#include "lint/diagnostics.hpp"

namespace ecucsp::lint {

struct RuleInfo {
  std::string_view id;
  Severity severity;        // default severity
  std::string_view summary; // one-line description for --list-rules / docs
};

// --- input ------------------------------------------------------------------
inline constexpr std::string_view kRuleParseError = "E001";

// --- CAPL -------------------------------------------------------------------
inline constexpr std::string_view kRuleCaplDuplicateHandler = "C001";
inline constexpr std::string_view kRuleCaplUnknownMessage = "C002";
inline constexpr std::string_view kRuleCaplUnknownSignal = "C003";
inline constexpr std::string_view kRuleCaplSignalOverflow = "C004";
inline constexpr std::string_view kRuleCaplByteIndexRange = "C005";
inline constexpr std::string_view kRuleCaplUnreachableCode = "C006";
inline constexpr std::string_view kRuleCaplUndefinedName = "C007";
inline constexpr std::string_view kRuleCaplThisOutsideHandler = "C008";
inline constexpr std::string_view kRuleCaplDuplicateVariable = "C009";

// --- DBC --------------------------------------------------------------------
inline constexpr std::string_view kRuleDbcSignalExceedsDlc = "D001";
inline constexpr std::string_view kRuleDbcSignalOverlap = "D002";
inline constexpr std::string_view kRuleDbcDuplicateMessageId = "D003";
inline constexpr std::string_view kRuleDbcDuplicateSignal = "D004";

// --- CSPm -------------------------------------------------------------------
inline constexpr std::string_view kRuleCspmUndefinedName = "S001";
inline constexpr std::string_view kRuleCspmNotAChannel = "S002";
inline constexpr std::string_view kRuleCspmUnusedDefinition = "S003";
inline constexpr std::string_view kRuleCspmUnguardedRecursion = "S004";
inline constexpr std::string_view kRuleCspmVacuousRefinement = "S005";
inline constexpr std::string_view kRuleCspmUnusedChannel = "S006";

// --- CAPL taint/dataflow -----------------------------------------------------
inline constexpr std::string_view kRuleTaintToBus = "T001";
inline constexpr std::string_view kRuleMacBypass = "T002";
inline constexpr std::string_view kRuleStaleFreshness = "T003";

/// The whole catalogue, in id order.
std::span<const RuleInfo> all_rules();

/// nullptr for unknown ids.
const RuleInfo* find_rule(std::string_view id);

}  // namespace ecucsp::lint
