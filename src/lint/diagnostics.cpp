#include "lint/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace ecucsp::lint {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

std::size_t DiagnosticSink::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

void DiagnosticSink::finalize() {
  std::sort(diags_.begin(), diags_.end());
  diags_.erase(std::unique(diags_.begin(), diags_.end(),
                           [](const Diagnostic& a, const Diagnostic& b) {
                             return !(a < b) && !(b < a);
                           }),
               diags_.end());
}

namespace {

/// Line `line` (1-based) of `text`, without the trailing newline.
std::string_view source_line(std::string_view text, int line) {
  if (line <= 0) return {};
  std::size_t start = 0;
  for (int l = 1; l < line; ++l) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
  }
  const std::size_t end = text.find('\n', start);
  return text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                          : end - start);
}

void append_caret_block(std::string& out, std::string_view src_line,
                        const Span& span) {
  const std::string lineno = std::to_string(span.line);
  out += "  " + lineno + " | ";
  out += src_line;
  out += "\n  ";
  out.append(lineno.size(), ' ');
  out += " | ";
  // Mirror the source prefix character-for-character, mapping every
  // non-tab character to a space and keeping tabs as tabs: the caret then
  // lands under the spanned text whatever tab width the terminal uses.
  const std::size_t col = span.column > 0 ? span.column - 1 : 0;
  for (std::size_t i = 0; i < col && i < src_line.size(); ++i) {
    out += src_line[i] == '\t' ? '\t' : ' ';
  }
  out += '^';
  for (int i = 1; i < span.length; ++i) out += '~';
  out += '\n';
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string render_text(const std::vector<Diagnostic>& diags,
                        const SourceMap& sources) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.file;
    if (d.span.line > 0) {
      out += ':' + std::to_string(d.span.line) + ':' +
             std::to_string(d.span.column);
    }
    out += ": ";
    out += to_string(d.severity);
    out += ": " + d.message + " [" + d.rule + "]\n";
    const auto source = sources.find(d.file);
    if (d.span.line > 0 && source != sources.end()) {
      const std::string_view line = source_line(source->second, d.span.line);
      if (!line.empty()) append_caret_block(out, line, d.span);
    }
    // Flow chain: one note per step, source first, each with its own caret.
    for (const ChainStep& step : d.chain) {
      out += d.file;
      if (step.span.line > 0) {
        out += ':' + std::to_string(step.span.line) + ':' +
               std::to_string(step.span.column);
      }
      out += ": note: " + step.note + "\n";
      if (step.span.line > 0 && source != sources.end()) {
        const std::string_view line =
            source_line(source->second, step.span.line);
        if (!line.empty()) append_caret_block(out, line, step.span);
      }
    }
  }
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::string out = "{\"lint_format\":2,\"diagnostics\":[";
  bool first = true;
  std::size_t errors = 0, warnings = 0, notes = 0;
  for (const Diagnostic& d : diags) {
    switch (d.severity) {
      case Severity::Error: ++errors; break;
      case Severity::Warning: ++warnings; break;
      case Severity::Note: ++notes; break;
    }
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":\"";
    json_escape(out, d.rule);
    out += "\",\"severity\":\"";
    out += to_string(d.severity);
    out += "\",\"file\":\"";
    json_escape(out, d.file);
    out += "\",\"line\":" + std::to_string(d.span.line) +
           ",\"column\":" + std::to_string(d.span.column) +
           ",\"length\":" + std::to_string(d.span.length) + ",\"message\":\"";
    json_escape(out, d.message);
    out += '"';
    if (!d.chain.empty()) {
      out += ",\"chain\":[";
      bool first_step = true;
      for (const ChainStep& step : d.chain) {
        if (!first_step) out += ',';
        first_step = false;
        out += "{\"line\":" + std::to_string(step.span.line) +
               ",\"column\":" + std::to_string(step.span.column) +
               ",\"length\":" + std::to_string(step.span.length) +
               ",\"note\":\"";
        json_escape(out, step.note);
        out += "\"}";
      }
      out += ']';
    }
    out += '}';
  }
  out += "],\"summary\":{\"errors\":" + std::to_string(errors) +
         ",\"warnings\":" + std::to_string(warnings) +
         ",\"notes\":" + std::to_string(notes) + "}}\n";
  return out;
}

std::string summary_line(const std::vector<Diagnostic>& diags) {
  std::size_t errors = 0, warnings = 0, notes = 0;
  for (const Diagnostic& d : diags) {
    switch (d.severity) {
      case Severity::Error: ++errors; break;
      case Severity::Warning: ++warnings; break;
      case Severity::Note: ++notes; break;
    }
  }
  std::ostringstream out;
  out << errors << " error(s), " << warnings << " warning(s)";
  if (notes) out << ", " << notes << " note(s)";
  return out.str();
}

}  // namespace ecucsp::lint
