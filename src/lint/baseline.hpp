// Suppression baselines: adopt the linter on a codebase with existing
// findings without drowning CI in known noise.
//
// A baseline is a plain-text set of diagnostic fingerprints. A fingerprint
// deliberately omits line/column — moving a finding around a file (the
// normal churn of editing) does not un-suppress it; changing the rule, the
// file, or the message text (which embeds the offending names) does.
// Workflow:
//
//   $ ecucsp_lint --write-baseline lint.baseline src/*.can net.dbc
//   ... later, in CI ...
//   $ ecucsp_lint --werror --baseline lint.baseline src/*.can net.dbc
//
// The CI run fails only on findings that are NOT in the baseline — i.e. on
// regressions. Baselined findings are filtered out of the report entirely;
// fixing one simply leaves a stale entry behind (regenerate to tidy up).
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostics.hpp"

namespace ecucsp::lint {

/// Stable identity of a finding for suppression purposes:
/// "rule\tfile\tmessage".
std::string baseline_key(const Diagnostic& d);

class Baseline {
 public:
  /// Collect the fingerprints of every diagnostic in `diags`.
  static Baseline from_diagnostics(const std::vector<Diagnostic>& diags);

  /// Parse the on-disk format: '#' comments and blank lines ignored, every
  /// other line a fingerprint. Throws std::runtime_error on a line with
  /// fewer than two tab separators (a corrupted or non-baseline file).
  static Baseline parse(const std::string& text);

  /// Serialize to the on-disk format: a header comment plus the sorted
  /// fingerprints, newline-terminated. Byte-stable for identical findings.
  std::string serialize() const;

  bool contains(const Diagnostic& d) const;
  std::size_t size() const { return keys_.size(); }

 private:
  std::vector<std::string> keys_;  // sorted unique
};

/// The diagnostics of `diags` not suppressed by `base`, in original order.
std::vector<Diagnostic> filter_baselined(std::vector<Diagnostic> diags,
                                         const Baseline& base);

}  // namespace ecucsp::lint
