// CAPL semantic checks (C0xx).
//
// These run on the parsed program plus (optionally) the CANdb it is meant
// to run against, mirroring what the CAPL-to-CSP translator will later
// assume: handlers and message variables must name real frames, member
// accesses must name real signals, and constant signal writes must fit the
// declared bit width. Pure control-flow checks (unreachable code, duplicate
// handlers) work without a database.
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "lint/lint.hpp"

namespace ecucsp::lint {

namespace {

using capl::CaplExpr;
using capl::CaplProgram;
using capl::CaplStmt;
using capl::CaplType;
using capl::CExprKind;
using capl::CStmtKind;
using capl::CUnOp;
using capl::EventHandler;

/// Message-object members CAPL defines for every message, DBC or not.
bool is_builtin_member(const std::string& name) {
  return name == "id" || name == "dlc" || name == "dir" || name == "can" ||
         name == "time" || name == "rtr";
}

bool is_builtin_function(const std::string& name) {
  return name == "output" || name == "setTimer" || name == "cancelTimer" ||
         name == "write" || name == "timeNow";
}

Span span_at(int line, int column, int length = 1) {
  return Span{line, column > 0 ? column : 1, length > 0 ? length : 1};
}

/// `value` as a signed constant if the expression is a literal (possibly
/// negated); nullopt otherwise.
std::optional<std::int64_t> const_value(const CaplExpr* e) {
  if (!e) return std::nullopt;
  if (e->kind == CExprKind::Number || e->kind == CExprKind::CharLit) {
    return e->number;
  }
  if (e->kind == CExprKind::Unary && e->un == CUnOp::Neg && !e->args.empty()) {
    if (auto v = const_value(e->args[0].get())) return -*v;
  }
  return std::nullopt;
}

class CaplLinter {
 public:
  CaplLinter(const CaplProgram& prog, const can::DbcDatabase* db,
             const std::string& file, DiagnosticSink& sink)
      : prog_(prog), db_(db), file_(file), sink_(sink) {}

  void run() {
    collect_globals();
    check_handlers();
    for (const auto& fn : prog_.functions) check_function(fn);
  }

 private:
  // --- top level -------------------------------------------------------------

  void collect_globals() {
    for (const auto& fn : prog_.functions) functions_.insert(fn.name);
    for (const auto& v : prog_.variables) {
      if (!globals_.insert(v.name).second) {
        sink_.add(std::string(kRuleCaplDuplicateVariable), Severity::Warning,
                  file_, span_at(v.line, v.column, int(v.name.size())),
                  "variable '" + v.name + "' is declared more than once");
      }
      if (v.type == CaplType::Message) {
        global_msgs_[v.name] =
            resolve_message(v.msg_name, v.msg_id, v.line, v.column);
      }
    }
  }

  /// DBC lookup shared by declarations and handlers; emits C002 when the
  /// database is loaded but the frame is missing from it.
  const can::DbcMessage* resolve_message(const std::string& name,
                                         std::int64_t id, int line,
                                         int column) {
    if (!db_) return nullptr;
    if (!name.empty()) {
      if (const auto* m = db_->find_message(name)) return m;
      sink_.add(std::string(kRuleCaplUnknownMessage), Severity::Error, file_,
                span_at(line, column, int(name.size())),
                "message '" + name + "' is not defined in the CANdb");
      return nullptr;
    }
    if (id >= 0) {
      if (const auto* m = db_->find_message(can::CanId(id))) return m;
      sink_.add(std::string(kRuleCaplUnknownMessage), Severity::Error, file_,
                span_at(line, column),
                "message id 0x" + to_hex(id) + " is not defined in the CANdb");
    }
    return nullptr;
  }

  static std::string to_hex(std::int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(v));
    return buf;
  }

  void check_handlers() {
    std::map<std::string, int> seen;  // dispatch key -> first line
    for (const auto& h : prog_.handlers) {
      const can::DbcMessage* msg = nullptr;
      std::string key;
      switch (h.kind) {
        case EventHandler::Kind::Start: key = "start"; break;
        case EventHandler::Kind::StopMeasurement: key = "stopMeasurement"; break;
        case EventHandler::Kind::Key: key = "key " + h.target; break;
        case EventHandler::Kind::Timer:
          key = "timer " + h.target;
          if (!globals_.count(h.target)) {
            sink_.add(std::string(kRuleCaplUndefinedName), Severity::Error,
                      file_, span_at(h.line, h.column, int(h.target.size())),
                      "timer '" + h.target +
                          "' is not declared in the variables section");
          }
          break;
        case EventHandler::Kind::Message: {
          if (h.any_message) {
            key = "message *";
          } else {
            msg = resolve_message(h.target, h.msg_id, h.line, h.column);
            // Name and numeric-id handlers for the same frame collide at
            // dispatch time, so key on the resolved id when we have one.
            if (msg) {
              key = "message #" + std::to_string(msg->id);
            } else if (h.msg_id >= 0) {
              key = "message #" + std::to_string(h.msg_id);
            } else {
              key = "message " + h.target;
            }
          }
          break;
        }
      }
      const auto [it, inserted] = seen.emplace(key, h.line);
      if (!inserted) {
        sink_.add(std::string(kRuleCaplDuplicateHandler), Severity::Error,
                  file_, span_at(h.line, h.column),
                  "duplicate handler 'on " + key + "'; first defined at line " +
                      std::to_string(it->second));
      }
      check_body(h.body.get(), {}, msg,
                 h.kind == EventHandler::Kind::Message);
    }
  }

  void check_function(const capl::FunctionDecl& fn) {
    std::set<std::string> params;
    for (const auto& [type, name] : fn.params) {
      if (!params.insert(name).second) {
        sink_.add(std::string(kRuleCaplDuplicateVariable), Severity::Warning,
                  file_, span_at(fn.line, fn.column, int(name.size())),
                  "parameter '" + name + "' is declared more than once");
      }
    }
    check_body(fn.body.get(), params, nullptr, false);
  }

  // --- bodies ----------------------------------------------------------------

  struct Scope {
    std::set<std::string> names;                             // locals + params
    std::map<std::string, const can::DbcMessage*> msg_vars;  // local messages
    const can::DbcMessage* this_msg = nullptr;  // 'on message' frame, if known
    bool in_message_handler = false;
  };

  void check_body(const CaplStmt* body, const std::set<std::string>& params,
                  const can::DbcMessage* this_msg, bool in_message_handler) {
    if (!body) return;
    Scope scope;
    scope.names = params;
    scope.this_msg = this_msg;
    scope.in_message_handler = in_message_handler;
    // CAPL hoists declarations to the top of the enclosing procedure, so
    // collect every local before walking uses.
    collect_locals(body, scope);
    walk_stmt(body, scope);
  }

  void collect_locals(const CaplStmt* s, Scope& scope) {
    if (!s) return;
    if (s->kind == CStmtKind::VarDecl) {
      if (!scope.names.insert(s->var_name).second) {
        sink_.add(std::string(kRuleCaplDuplicateVariable), Severity::Warning,
                  file_, span_at(s->line, s->column, int(s->var_name.size())),
                  "variable '" + s->var_name + "' is declared more than once");
      }
      if (s->var_type == CaplType::Message) {
        scope.msg_vars[s->var_name] =
            resolve_message(s->msg_name, s->msg_id, s->line, s->column);
      }
    }
    for (const auto& kid : s->body) collect_locals(kid.get(), scope);
    collect_locals(s->then_branch.get(), scope);
    collect_locals(s->else_branch.get(), scope);
    collect_locals(s->loop_body.get(), scope);
    collect_locals(s->for_init.get(), scope);
    collect_locals(s->for_step.get(), scope);
  }

  void walk_stmt(const CaplStmt* s, const Scope& scope) {
    if (!s) return;
    switch (s->kind) {
      case CStmtKind::Block:
      case CStmtKind::Case: {
        bool dead = false;
        bool reported = false;  // one diagnostic per dead region
        for (const auto& kid : s->body) {
          if (dead && !reported) {
            sink_.add(std::string(kRuleCaplUnreachableCode), Severity::Warning,
                      file_, span_at(kid->line, kid->column),
                      "statement is unreachable");
            reported = true;
          }
          // Dead statements are still walked: other findings in them are
          // real once the early return is removed.
          walk_stmt(kid.get(), scope);
          if (kid->kind == CStmtKind::Return || kid->kind == CStmtKind::Break) {
            dead = true;
          }
        }
        break;
      }
      case CStmtKind::VarDecl:
        walk_expr(s->init.get(), scope);
        break;
      case CStmtKind::ExprStmt:
        walk_expr(s->expr.get(), scope);
        break;
      case CStmtKind::Assign:
        walk_expr(s->lvalue.get(), scope);
        walk_expr(s->value.get(), scope);
        check_signal_write(s, scope);
        break;
      case CStmtKind::IncDec:
        walk_expr(s->lvalue.get(), scope);
        break;
      case CStmtKind::If:
        walk_expr(s->value.get(), scope);
        walk_stmt(s->then_branch.get(), scope);
        walk_stmt(s->else_branch.get(), scope);
        break;
      case CStmtKind::While:
        walk_expr(s->value.get(), scope);
        walk_stmt(s->loop_body.get(), scope);
        break;
      case CStmtKind::For:
        walk_stmt(s->for_init.get(), scope);
        walk_expr(s->value.get(), scope);
        walk_stmt(s->for_step.get(), scope);
        walk_stmt(s->loop_body.get(), scope);
        break;
      case CStmtKind::Switch:
        walk_expr(s->value.get(), scope);
        for (const auto& kid : s->body) walk_stmt(kid.get(), scope);
        break;
      case CStmtKind::Break:
      case CStmtKind::Return:
        walk_expr(s->value.get(), scope);
        break;
    }
  }

  // --- expressions -----------------------------------------------------------

  void walk_expr(const CaplExpr* e, const Scope& scope) {
    if (!e) return;
    switch (e->kind) {
      case CExprKind::Name:
        if (!scope.names.count(e->text) && !globals_.count(e->text) &&
            !functions_.count(e->text)) {
          sink_.add(std::string(kRuleCaplUndefinedName), Severity::Error, file_,
                    span_at(e->line, e->column, int(e->text.size())),
                    "use of undefined name '" + e->text + "'");
        }
        break;
      case CExprKind::This:
        if (!scope.in_message_handler) {
          sink_.add(std::string(kRuleCaplThisOutsideHandler), Severity::Error,
                    file_, span_at(e->line, e->column, 4),
                    "'this' is only meaningful inside an 'on message' "
                    "event procedure");
        }
        break;
      case CExprKind::Call:
        if (!functions_.count(e->text) && !is_builtin_function(e->text)) {
          sink_.add(std::string(kRuleCaplUndefinedName), Severity::Error, file_,
                    span_at(e->line, e->column, int(e->text.size())),
                    "call to undefined function '" + e->text + "'");
        }
        for (const auto& arg : e->args) walk_expr(arg.get(), scope);
        break;
      case CExprKind::Member:
        check_member(e, scope);
        walk_expr(e->object.get(), scope);
        break;
      case CExprKind::ByteAccess:
        check_byte_access(e, scope);
        walk_expr(e->object.get(), scope);
        for (const auto& arg : e->args) walk_expr(arg.get(), scope);
        break;
      case CExprKind::Binary:
      case CExprKind::Unary:
        for (const auto& arg : e->args) walk_expr(arg.get(), scope);
        break;
      case CExprKind::Number:
      case CExprKind::CharLit:
      case CExprKind::StringLit:
        break;
    }
  }

  /// The CANdb frame a member/byte access reaches through, when it is
  /// statically known: 'this' inside a resolved handler, or a message
  /// variable whose declaration resolved.
  const can::DbcMessage* message_of(const CaplExpr* obj,
                                    const Scope& scope) const {
    if (!obj) return nullptr;
    if (obj->kind == CExprKind::This) return scope.this_msg;
    if (obj->kind == CExprKind::Name) {
      if (const auto it = scope.msg_vars.find(obj->text);
          it != scope.msg_vars.end()) {
        return it->second;
      }
      if (const auto it = global_msgs_.find(obj->text);
          it != global_msgs_.end()) {
        return it->second;
      }
    }
    return nullptr;
  }

  void check_member(const CaplExpr* e, const Scope& scope) {
    if (is_builtin_member(e->text)) return;
    const can::DbcMessage* msg = message_of(e->object.get(), scope);
    if (!msg) return;  // unknown base: C002/C007 already cover it
    if (!msg->find_signal(e->text)) {
      sink_.add(std::string(kRuleCaplUnknownSignal), Severity::Error, file_,
                span_at(e->line, e->column, int(e->text.size())),
                "message '" + msg->name + "' has no signal '" + e->text + "'");
    }
  }

  void check_byte_access(const CaplExpr* e, const Scope& scope) {
    const can::DbcMessage* msg = message_of(e->object.get(), scope);
    if (!msg || e->args.empty()) return;
    const auto idx = const_value(e->args[0].get());
    if (!idx) return;
    const int width = e->access_width;
    const char* unit = width == 1 ? "byte" : width == 2 ? "word" : "dword";
    if (*idx < 0 || (*idx + 1) * width > std::int64_t(msg->dlc)) {
      sink_.add(std::string(kRuleCaplByteIndexRange), Severity::Warning, file_,
                span_at(e->line, e->column),
                std::string(unit) + "(" + std::to_string(*idx) +
                    ") reaches past the " + std::to_string(int(msg->dlc)) +
                    "-byte payload of message '" + msg->name + "'");
    }
  }

  void check_signal_write(const CaplStmt* s, const Scope& scope) {
    const CaplExpr* lv = s->lvalue.get();
    if (!lv || lv->kind != CExprKind::Member || is_builtin_member(lv->text)) {
      return;
    }
    const can::DbcMessage* msg = message_of(lv->object.get(), scope);
    if (!msg) return;
    const can::DbcSignal* sig = msg->find_signal(lv->text);
    if (!sig) return;  // C003 already reported
    // Only plain raw-valued signals: with a factor/offset the written
    // physical value is rescaled before packing, so a literal bound check
    // would be wrong.
    if (sig->spec.factor != 1.0 || sig->spec.offset != 0.0) return;
    const auto v = const_value(s->value.get());
    if (!v || s->assign_op != 0) return;
    const unsigned len = sig->spec.length;
    if (len >= 64) return;
    bool fits;
    if (sig->spec.is_signed) {
      const std::int64_t lo = -(std::int64_t(1) << (len - 1));
      const std::int64_t hi = (std::int64_t(1) << (len - 1)) - 1;
      fits = *v >= lo && *v <= hi;
    } else {
      fits = *v >= 0 && *v < (std::int64_t(1) << len);
    }
    if (!fits) {
      sink_.add(std::string(kRuleCaplSignalOverflow), Severity::Warning, file_,
                span_at(lv->line, lv->column, int(lv->text.size())),
                "value " + std::to_string(*v) + " cannot fit signal '" +
                    sig->spec.name + "' (" + std::to_string(len) +
                    (sig->spec.is_signed ? " signed" : " unsigned") +
                    " bit(s))");
    }
  }

  const CaplProgram& prog_;
  const can::DbcDatabase* db_;
  const std::string& file_;
  DiagnosticSink& sink_;

  std::set<std::string> globals_;
  std::set<std::string> functions_;
  std::map<std::string, const can::DbcMessage*> global_msgs_;
};

}  // namespace

void lint_capl(const capl::CaplProgram& prog, const can::DbcDatabase* db,
               const std::string& file, DiagnosticSink& sink) {
  CaplLinter(prog, db, file, sink).run();
}

}  // namespace ecucsp::lint
