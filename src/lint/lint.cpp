#include "lint/lint.hpp"

#include "capl/parser.hpp"
#include "cspm/lexer.hpp"
#include "cspm/parser.hpp"

namespace ecucsp::lint {

bool LintReport::has_errors() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) return true;
  }
  return false;
}

bool LintReport::has_warnings() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Warning) return true;
  }
  return false;
}

LintReport run_lint(const LintRequest& req) {
  DiagnosticSink sink;
  LintReport report;

  // The database first: CAPL rules cross-reference it, but only when it
  // parsed — a broken DBC yields one E001, not a cascade of C002s.
  std::optional<can::DbcDatabase> db;
  if (req.dbc) {
    report.sources[req.dbc->path] = req.dbc->text;
    try {
      db = can::parse_dbc(req.dbc->text);
      lint_dbc(*db, req.dbc->path, sink);
    } catch (const can::DbcParseError& e) {
      sink.add(std::string(kRuleParseError), Severity::Error, req.dbc->path,
               Span{e.line, 1, 1}, e.what());
    }
  }

  for (const SourceFile& f : req.capl) {
    report.sources[f.path] = f.text;
    try {
      const capl::CaplProgram prog = capl::parse_capl(f.text);
      lint_capl(prog, db ? &*db : nullptr, f.path, sink);
      lint_capl_taint(prog, db ? &*db : nullptr, f.path, sink);
    } catch (const capl::CaplError& e) {
      sink.add(std::string(kRuleParseError), Severity::Error, f.path,
               Span{e.line, e.column, 1}, e.what());
    }
  }

  for (const SourceFile& f : req.cspm) {
    report.sources[f.path] = f.text;
    try {
      const cspm::Script script = cspm::parse_cspm(f.text);
      lint_cspm(script, f.path, sink);
    } catch (const cspm::ParseError& e) {
      sink.add(std::string(kRuleParseError), Severity::Error, f.path,
               Span{e.line, e.column, 1}, e.what());
    } catch (const cspm::LexError& e) {
      sink.add(std::string(kRuleParseError), Severity::Error, f.path,
               Span{e.line, e.column, 1}, e.what());
    }
  }

  sink.finalize();
  report.diagnostics = sink.diagnostics();
  return report;
}

}  // namespace ecucsp::lint
