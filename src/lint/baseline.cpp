#include "lint/baseline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ecucsp::lint {

std::string baseline_key(const Diagnostic& d) {
  // Newlines never appear in rule ids, file names or messages (the renderers
  // rely on that too), so the line-oriented format is unambiguous.
  return d.rule + "\t" + d.file + "\t" + d.message;
}

Baseline Baseline::from_diagnostics(const std::vector<Diagnostic>& diags) {
  Baseline b;
  b.keys_.reserve(diags.size());
  for (const Diagnostic& d : diags) b.keys_.push_back(baseline_key(d));
  std::sort(b.keys_.begin(), b.keys_.end());
  b.keys_.erase(std::unique(b.keys_.begin(), b.keys_.end()), b.keys_.end());
  return b;
}

Baseline Baseline::parse(const std::string& text) {
  Baseline b;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      throw std::runtime_error("baseline line " + std::to_string(lineno) +
                               ": expected 'rule<TAB>file<TAB>message'");
    }
    b.keys_.push_back(line);
  }
  std::sort(b.keys_.begin(), b.keys_.end());
  b.keys_.erase(std::unique(b.keys_.begin(), b.keys_.end()), b.keys_.end());
  return b;
}

std::string Baseline::serialize() const {
  std::string out =
      "# ecucsp_lint baseline: rule<TAB>file<TAB>message, one per line.\n"
      "# Findings listed here are suppressed; regenerate with "
      "--write-baseline.\n";
  for (const std::string& k : keys_) {
    out += k;
    out += '\n';
  }
  return out;
}

bool Baseline::contains(const Diagnostic& d) const {
  return std::binary_search(keys_.begin(), keys_.end(), baseline_key(d));
}

std::vector<Diagnostic> filter_baselined(std::vector<Diagnostic> diags,
                                         const Baseline& base) {
  diags.erase(std::remove_if(
                  diags.begin(), diags.end(),
                  [&](const Diagnostic& d) { return base.contains(d); }),
              diags.end());
  return diags;
}

}  // namespace ecucsp::lint
