#include "lint/dataflow.hpp"

namespace ecucsp::lint {

void Worklist::push(std::size_t i) {
  if (queued_[i]) return;
  queued_[i] = true;
  pending_.insert(i);
}

std::size_t Worklist::pop() {
  const std::size_t i = *pending_.begin();
  pending_.erase(pending_.begin());
  queued_[i] = false;
  return i;
}

}  // namespace ecucsp::lint
