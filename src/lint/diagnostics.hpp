// Diagnostics engine for the cross-layer lint pass.
//
// A Diagnostic is a plain record: stable rule id, severity, source file,
// span and message. The sink collects them from every analyzer family
// (CAPL, DBC, CSPm); rendering is deterministic — diagnostics are sorted
// by (file, line, column, rule, message) so output is byte-stable across
// analyzer orderings — and comes in two shapes:
//   * human: "file:line:col: severity: message [rule]" plus the offending
//     source line with a caret/tilde underline;
//   * JSON: a versioned, machine-stable schema for editor/CI integration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ecucsp::lint {

enum class Severity : std::uint8_t { Note, Warning, Error };

std::string_view to_string(Severity s);

/// Half-open source region on one line; column 1-based, length in
/// characters (>= 1 so the caret renderer always has something to point
/// at). line == 0 means "whole file" (e.g. a file-level parse failure).
struct Span {
  int line = 0;
  int column = 1;
  int length = 1;
};

/// One step of a flow chain attached to a diagnostic: where the value came
/// from / passed through / ended up, in path order (source first, sink
/// last). Steps always refer to the diagnostic's own file.
struct ChainStep {
  Span span;
  std::string note;  // "tainted by received payload", "reaches output()", ...
};

struct Diagnostic {
  std::string rule;     // stable id from the catalogue, e.g. "C002"
  Severity severity = Severity::Warning;
  std::string file;     // as given by the caller; "<ota>" etc. for builtins
  Span span;
  std::string message;
  /// Source→sink provenance for flow rules (T0xx); empty for point rules.
  std::vector<ChainStep> chain;

  /// Deterministic rendering/report order — a strict *total* order over
  /// every field, so the (unstable) sort in DiagnosticSink::finalize cannot
  /// leave the report order, or which of two near-duplicates survives
  /// dedupe, to chance. Two diagnostics compare equal here only when they
  /// are equal outright.
  friend bool operator<(const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.span.line != b.span.line) return a.span.line < b.span.line;
    if (a.span.column != b.span.column) return a.span.column < b.span.column;
    if (a.rule != b.rule) return a.rule < b.rule;
    if (a.message != b.message) return a.message < b.message;
    if (a.severity != b.severity) return a.severity < b.severity;
    if (a.span.length != b.span.length) return a.span.length < b.span.length;
    if (a.chain.size() != b.chain.size()) {
      return a.chain.size() < b.chain.size();
    }
    for (std::size_t i = 0; i < a.chain.size(); ++i) {
      const ChainStep& x = a.chain[i];
      const ChainStep& y = b.chain[i];
      if (x.span.line != y.span.line) return x.span.line < y.span.line;
      if (x.span.column != y.span.column) return x.span.column < y.span.column;
      if (x.span.length != y.span.length) return x.span.length < y.span.length;
      if (x.note != y.note) return x.note < y.note;
    }
    return false;
  }
};

/// Collector shared by the analyzer families.
class DiagnosticSink {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void add(std::string rule, Severity severity, std::string file, Span span,
           std::string message) {
    diags_.push_back({std::move(rule), severity, std::move(file), span,
                      std::move(message)});
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  std::size_t count(Severity s) const;
  bool has_errors() const { return count(Severity::Error) > 0; }

  /// Sort into the deterministic report order and drop exact duplicates.
  void finalize();

 private:
  std::vector<Diagnostic> diags_;
};

/// Source texts by file name, for caret rendering. Files missing from the
/// map render without the source/caret lines.
using SourceMap = std::map<std::string, std::string, std::less<>>;

/// Human-readable report:
///   vmg.can:23:12: error: handler references unknown message 'Foo' [C002]
///      23 | on message Foo {
///         |            ^~~
/// Tabs in the source line are preserved in the gutter copy and mirrored in
/// the caret line's padding, so the underline stays aligned in terminals
/// regardless of tab width.
std::string render_text(const std::vector<Diagnostic>& diags,
                        const SourceMap& sources);

/// Machine-readable report (schema version 2, stable key order):
/// {"lint_format":2,"diagnostics":[{"rule":...,"severity":...,"file":...,
///  "line":...,"column":...,"length":...,"message":...,
///  "chain":[{"line":...,"column":...,"length":...,"note":...},...]}],
///  "summary":{"errors":N,"warnings":N,"notes":N}}
/// The "chain" key is present only on diagnostics that carry a flow chain
/// (v2's addition; every v1 key is unchanged).
std::string render_json(const std::vector<Diagnostic>& diags);

/// One-line summary, e.g. "2 error(s), 1 warning(s)".
std::string summary_line(const std::vector<Diagnostic>& diags);

}  // namespace ecucsp::lint
