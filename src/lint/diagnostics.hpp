// Diagnostics engine for the cross-layer lint pass.
//
// A Diagnostic is a plain record: stable rule id, severity, source file,
// span and message. The sink collects them from every analyzer family
// (CAPL, DBC, CSPm); rendering is deterministic — diagnostics are sorted
// by (file, line, column, rule, message) so output is byte-stable across
// analyzer orderings — and comes in two shapes:
//   * human: "file:line:col: severity: message [rule]" plus the offending
//     source line with a caret/tilde underline;
//   * JSON: a versioned, machine-stable schema for editor/CI integration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ecucsp::lint {

enum class Severity : std::uint8_t { Note, Warning, Error };

std::string_view to_string(Severity s);

/// Half-open source region on one line; column 1-based, length in
/// characters (>= 1 so the caret renderer always has something to point
/// at). line == 0 means "whole file" (e.g. a file-level parse failure).
struct Span {
  int line = 0;
  int column = 1;
  int length = 1;
};

struct Diagnostic {
  std::string rule;     // stable id from the catalogue, e.g. "C002"
  Severity severity = Severity::Warning;
  std::string file;     // as given by the caller; "<ota>" etc. for builtins
  Span span;
  std::string message;

  /// Deterministic rendering/report order.
  friend bool operator<(const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.span.line != b.span.line) return a.span.line < b.span.line;
    if (a.span.column != b.span.column) return a.span.column < b.span.column;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  }
};

/// Collector shared by the analyzer families.
class DiagnosticSink {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void add(std::string rule, Severity severity, std::string file, Span span,
           std::string message) {
    diags_.push_back({std::move(rule), severity, std::move(file), span,
                      std::move(message)});
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  std::size_t count(Severity s) const;
  bool has_errors() const { return count(Severity::Error) > 0; }

  /// Sort into the deterministic report order and drop exact duplicates.
  void finalize();

 private:
  std::vector<Diagnostic> diags_;
};

/// Source texts by file name, for caret rendering. Files missing from the
/// map render without the source/caret lines.
using SourceMap = std::map<std::string, std::string, std::less<>>;

/// Human-readable report:
///   vmg.can:23:12: error: handler references unknown message 'Foo' [C002]
///      23 | on message Foo {
///         |            ^~~
/// Tabs in the source line are preserved in the gutter copy and mirrored in
/// the caret line's padding, so the underline stays aligned in terminals
/// regardless of tab width.
std::string render_text(const std::vector<Diagnostic>& diags,
                        const SourceMap& sources);

/// Machine-readable report (schema version 1, stable key order):
/// {"lint_format":1,"diagnostics":[{"rule":...,"severity":...,"file":...,
///  "line":...,"column":...,"length":...,"message":...}],
///  "summary":{"errors":N,"warnings":N,"notes":N}}
std::string render_json(const std::vector<Diagnostic>& diags);

/// One-line summary, e.g. "2 error(s), 1 warning(s)".
std::string summary_line(const std::vector<Diagnostic>& diags);

}  // namespace ecucsp::lint
