// CANdb consistency checks (D0xx).
//
// Bit occupancy is computed as a 64-bit mask of *physical* payload bits
// (byte*8 + bit-within-byte), which makes overlap and DLC checks exact for
// both byte orders: Intel signals grow upward from the start bit, Motorola
// signals start at the MSB of their start byte and grow down through each
// byte then on to the next (the DBC "sawtooth").
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "lint/lint.hpp"

namespace ecucsp::lint {

namespace {

struct Occupancy {
  std::uint64_t mask = 0;     // physical bits 0..63
  bool past_payload = false;  // any bit lands beyond the message DLC
};

Occupancy occupancy(const can::SignalSpec& spec, unsigned dlc_bits) {
  Occupancy occ;
  if (spec.byte_order == can::ByteOrder::Intel) {
    for (unsigned i = 0; i < spec.length; ++i) {
      const unsigned bit = spec.start_bit + i;
      if (bit >= dlc_bits) occ.past_payload = true;
      if (bit < 64) occ.mask |= std::uint64_t(1) << bit;
    }
  } else {
    unsigned byte = spec.start_bit / 8;
    int bit_in_byte = int(spec.start_bit % 8);
    for (unsigned i = 0; i < spec.length; ++i) {
      const unsigned bit = byte * 8 + unsigned(bit_in_byte);
      if (bit >= dlc_bits) occ.past_payload = true;
      if (bit < 64) occ.mask |= std::uint64_t(1) << bit;
      if (--bit_in_byte < 0) {
        bit_in_byte = 7;
        ++byte;
      }
    }
  }
  return occ;
}

}  // namespace

void lint_dbc(const can::DbcDatabase& db, const std::string& file,
              DiagnosticSink& sink) {
  std::map<can::CanId, const can::DbcMessage*> by_id;
  for (const auto& msg : db.messages) {
    const auto [it, inserted] = by_id.emplace(msg.id, &msg);
    if (!inserted) {
      sink.add(std::string(kRuleDbcDuplicateMessageId), Severity::Error, file,
               Span{msg.line, 1, 1},
               "messages '" + it->second->name + "' and '" + msg.name +
                   "' share CAN id " + std::to_string(msg.id));
    }

    const unsigned dlc_bits = unsigned(msg.dlc) * 8;
    std::set<std::string> names;
    std::vector<std::pair<const can::DbcSignal*, Occupancy>> placed;
    for (const auto& sig : msg.signals) {
      if (!names.insert(sig.spec.name).second) {
        sink.add(std::string(kRuleDbcDuplicateSignal), Severity::Warning, file,
                 Span{sig.line, 1, 1},
                 "message '" + msg.name + "' defines signal '" +
                     sig.spec.name + "' more than once");
      }
      const Occupancy occ = occupancy(sig.spec, dlc_bits);
      if (occ.past_payload) {
        sink.add(std::string(kRuleDbcSignalExceedsDlc), Severity::Error, file,
                 Span{sig.line, 1, 1},
                 "signal '" + sig.spec.name + "' (" +
                     std::to_string(sig.spec.length) + " bit(s) at " +
                     std::to_string(sig.spec.start_bit) +
                     ") extends past the " + std::to_string(int(msg.dlc)) +
                     "-byte payload of message '" + msg.name + "'");
      }
      for (const auto& [other, other_occ] : placed) {
        if ((occ.mask & other_occ.mask) != 0) {
          sink.add(std::string(kRuleDbcSignalOverlap), Severity::Error, file,
                   Span{sig.line, 1, 1},
                   "signal '" + sig.spec.name + "' overlaps signal '" +
                       other->spec.name + "' in message '" + msg.name + "'");
        }
      }
      placed.emplace_back(&sig, occ);
    }
  }
}

}  // namespace ecucsp::lint
