// Cross-layer lint orchestrator.
//
// The lint pass guards the extract-then-verify pipeline (ISSUE: extraction
// soundness bugs are the dominant failure mode of such pipelines): it parses
// each input with the production front ends, then runs three analyzer
// families over the ASTs —
//   * CAPL semantic checks against the loaded CANdb (C0xx),
//   * CANdb internal consistency (D0xx),
//   * CSPm model checks including static refinement vacuity (S0xx).
// Lex/parse failures are not thrown at the caller; they become E001
// diagnostics so a single report covers every input.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "can/dbc.hpp"
#include "capl/ast.hpp"
#include "cspm/ast.hpp"
#include "lint/diagnostics.hpp"
#include "lint/rules.hpp"

namespace ecucsp::lint {

struct SourceFile {
  std::string path;  // label used in diagnostics; need not exist on disk
  std::string text;
};

struct LintRequest {
  std::vector<SourceFile> capl;
  std::optional<SourceFile> dbc;  // at most one database per run
  std::vector<SourceFile> cspm;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;  // finalized (sorted, deduped)
  SourceMap sources;                    // for caret rendering

  bool has_errors() const;
  bool has_warnings() const;
};

/// Parse and analyze everything in the request.
LintReport run_lint(const LintRequest& req);

// --- analyzer families (exposed for unit tests and embedded-model lint) -----

/// CAPL semantic checks. `db` may be null (DBC-dependent rules are skipped).
void lint_capl(const capl::CaplProgram& prog, const can::DbcDatabase* db,
               const std::string& file, DiagnosticSink& sink);

/// CAPL interprocedural taint/dataflow checks (T0xx). `db` may be null
/// (MAC-signal-dependent rules are skipped; pure taint flow still runs).
void lint_capl_taint(const capl::CaplProgram& prog, const can::DbcDatabase* db,
                     const std::string& file, DiagnosticSink& sink);

/// CANdb consistency checks.
void lint_dbc(const can::DbcDatabase& db, const std::string& file,
              DiagnosticSink& sink);

/// CSPm model checks.
void lint_cspm(const cspm::Script& script, const std::string& file,
               DiagnosticSink& sink);

}  // namespace ecucsp::lint
