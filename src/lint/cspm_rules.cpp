// CSPm model checks (S0xx).
//
// Name resolution walks the script with a proper binder-aware scope
// (parameters, let bindings, generators, '?x' communication binders, set
// comprehensions). The unused/vacuity rules deliberately over-approximate
// "referenced" by collecting every name that appears syntactically — an
// over-approximation can only silence a warning, never invent one.
//
// S004 (unguarded recursion) builds a call graph restricted to *unguarded*
// positions: a reference inside a prefix continuation ('a -> P') is guarded;
// everything else — choice operands, parallel/seq/hide/rename operands,
// guard bodies, if branches, let bodies — is not. A definition that can
// reach itself through unguarded edges would make the LTS compiler chase an
// infinite unfolding (or the divergence checker find a tau cycle the hard
// way), so it is flagged here.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/cspm_reach.hpp"
#include "lint/lint.hpp"

namespace ecucsp::lint {

namespace {

using cspm::AssertionAst;
using cspm::Expr;
using cspm::ExprKind;
using cspm::Script;

bool is_builtin(const std::string& name) {
  return name == "union" || name == "inter" || name == "diff" ||
         name == "card" || name == "empty" || name == "member" ||
         name == "Union";
}

Span span_of(const Expr* e, int length = 1) {
  return Span{e->line, e->column > 0 ? e->column : 1, length > 0 ? length : 1};
}

/// Every Name / Call-head occurring under `e`, binders included
/// (over-approximation used by the usage rules). Shared with the
/// reachability analysis in cspm_reach.
void collect_names(const Expr* e, std::set<std::string>& out) {
  collect_cspm_names(e, out);
}

class CspmLinter {
 public:
  CspmLinter(const Script& script, const std::string& file,
             DiagnosticSink& sink)
      : script_(script), file_(file), sink_(sink) {}

  void run() {
    collect_declarations();
    resolve_all();
    report_unused();
    report_unguarded_recursion();
    report_vacuous_assertions();
  }

 private:
  // --- declaration tables ----------------------------------------------------

  void collect_declarations() {
    for (const auto& c : script_.channels) {
      for (const auto& n : c.names) channels_.insert(n);
    }
    for (const auto& d : script_.datatypes) {
      types_.insert(d.name);
      for (const auto& ctor : d.constructors) ctors_.insert(ctor);
    }
    for (const auto& n : script_.nametypes) types_.insert(n.name);
    for (const auto& d : script_.definitions) defs_.insert(d.name);
  }

  bool is_global(const std::string& name) const {
    return channels_.count(name) || types_.count(name) ||
           ctors_.count(name) || defs_.count(name) || is_builtin(name);
  }

  // --- S001 / S002: binder-aware resolution ----------------------------------

  using Scope = std::set<std::string>;

  void resolve_all() {
    for (const auto& c : script_.channels) {
      for (const auto& t : c.field_types) resolve(t.get(), {});
    }
    for (const auto& n : script_.nametypes) resolve(n.type.get(), {});
    for (const auto& d : script_.definitions) {
      Scope scope(d.params.begin(), d.params.end());
      resolve(d.body.get(), scope);
    }
    for (const auto& a : script_.assertions) {
      resolve(a.lhs.get(), {});
      resolve(a.rhs.get(), {});
    }
  }

  void resolve(const Expr* e, Scope scope) {
    if (!e) return;
    switch (e->kind) {
      case ExprKind::Name:
        check_defined(e, scope);
        return;
      case ExprKind::Call:
        check_defined(e, scope);
        for (const auto& kid : e->kids) resolve(kid.get(), scope);
        return;
      case ExprKind::Prefix: {
        check_prefix_head(e, scope);
        resolve(e->head.get(), scope);
        // '?x' binders scope over later fields and the continuation.
        for (const auto& f : e->fields) {
          resolve(f.restriction.get(), scope);
          resolve(f.expr.get(), scope);
          if (f.kind == cspm::CommField::Kind::Input) scope.insert(f.var);
        }
        if (!e->kids.empty()) resolve(e->kids[0].get(), scope);
        return;
      }
      case ExprKind::Let: {
        for (const auto& b : e->bindings) scope.insert(b.name);
        for (const auto& b : e->bindings) {
          Scope inner = scope;
          inner.insert(b.params.begin(), b.params.end());
          resolve(b.body.get(), inner);
        }
        if (!e->kids.empty()) resolve(e->kids[0].get(), scope);
        return;
      }
      case ExprKind::Replicated:
      case ExprKind::SetComp: {
        // Generator sets are evaluated left to right, each seeing the
        // binders introduced before it; the body sees them all.
        for (const auto& g : e->gens) {
          resolve(g.set.get(), scope);
          scope.insert(g.var);
        }
        for (const auto& kid : e->kids) resolve(kid.get(), scope);
        return;
      }
      case ExprKind::Rename:
        for (const auto& kid : e->kids) resolve(kid.get(), scope);
        for (const auto& r : e->renames) {
          resolve(r.from.get(), scope);
          resolve(r.to.get(), scope);
        }
        return;
      default:
        for (const auto& kid : e->kids) resolve(kid.get(), scope);
        return;
    }
  }

  void check_defined(const Expr* e, const Scope& scope) {
    if (scope.count(e->name) || is_global(e->name)) return;
    sink_.add(std::string(kRuleCspmUndefinedName), Severity::Error, file_,
              span_of(e, int(e->name.size())),
              "use of undefined name '" + e->name + "'");
  }

  /// The base name a prefix head communicates on: 'c', 'c.v', 'c!e?x'.
  static const Expr* head_base(const Expr* head) {
    while (head && head->kind == ExprKind::Dot && !head->kids.empty()) {
      head = head->kids[0].get();
    }
    return head;
  }

  void check_prefix_head(const Expr* e, const Scope& scope) {
    const Expr* base = head_base(e->head.get());
    if (!base || base->kind != ExprKind::Name) return;
    // A bound variable may hold a channel at runtime; only names that are
    // statically known to be something *else* are flagged.
    if (scope.count(base->name) || channels_.count(base->name)) return;
    if (!is_global(base->name)) return;  // S001 already fired
    sink_.add(std::string(kRuleCspmNotAChannel), Severity::Error, file_,
              span_of(base, int(base->name.size())),
              "'" + base->name +
                  "' is used as an event prefix but is not a declared "
                  "channel");
  }

  // --- S003 / S006: usage ----------------------------------------------------

  void report_unused() {
    // Names referenced outside each definition's own body; a definition
    // that only mentions itself ('P = a -> P') is still unused.
    std::map<std::string, std::set<std::string>> per_def;
    for (const auto& d : script_.definitions) {
      collect_names(d.body.get(), per_def[d.name]);
    }
    std::set<std::string> outside;  // from non-definition contexts
    for (const auto& c : script_.channels) {
      for (const auto& t : c.field_types) collect_names(t.get(), outside);
    }
    for (const auto& n : script_.nametypes) collect_names(n.type.get(), outside);
    for (const auto& a : script_.assertions) {
      collect_names(a.lhs.get(), outside);
      collect_names(a.rhs.get(), outside);
    }

    auto used_beyond = [&](const std::string& name) {
      if (outside.count(name)) return true;
      for (const auto& [def, names] : per_def) {
        if (def != name && names.count(name)) return true;
      }
      return false;
    };

    // A script with no assertions is a model fragment meant to be consumed
    // elsewhere (ecucsp_extract emits the composed SYSTEM last); its final
    // definition is the implicit root, not dead code.
    const std::string implicit_root =
        script_.assertions.empty() && !script_.definitions.empty()
            ? script_.definitions.back().name
            : std::string();

    for (const auto& d : script_.definitions) {
      if (d.name == implicit_root) continue;
      if (!used_beyond(d.name)) {
        sink_.add(std::string(kRuleCspmUnusedDefinition), Severity::Warning,
                  file_, Span{d.line, 1, int(d.name.size())},
                  "process '" + d.name +
                      "' is never used by another definition or assertion");
      }
    }
    for (const auto& c : script_.channels) {
      for (const auto& n : c.names) {
        bool used = outside.count(n) != 0;
        for (const auto& [def, names] : per_def) {
          if (used) break;
          used = names.count(n) != 0;
        }
        if (!used) {
          sink_.add(std::string(kRuleCspmUnusedChannel), Severity::Warning,
                    file_, Span{c.line, 1, int(n.size())},
                    "channel '" + n + "' is declared but never used");
        }
      }
    }
  }

  // --- S004: unguarded recursion ---------------------------------------------

  /// Definition names referenced in unguarded positions of `e`. Prefix
  /// continuations are the only guarded position; head/field expressions
  /// still evaluate before the event fires.
  void unguarded_refs(const Expr* e, std::set<std::string>& out) const {
    if (!e) return;
    if (e->kind == ExprKind::Name || e->kind == ExprKind::Call) {
      if (defs_.count(e->name)) out.insert(e->name);
    }
    if (e->kind == ExprKind::Prefix) {
      unguarded_refs(e->head.get(), out);
      for (const auto& f : e->fields) {
        unguarded_refs(f.restriction.get(), out);
        unguarded_refs(f.expr.get(), out);
      }
      return;  // kids[0] is the guarded continuation
    }
    for (const auto& kid : e->kids) unguarded_refs(kid.get(), out);
    unguarded_refs(e->head.get(), out);
    for (const auto& g : e->gens) unguarded_refs(g.set.get(), out);
    for (const auto& r : e->renames) {
      unguarded_refs(r.from.get(), out);
      unguarded_refs(r.to.get(), out);
    }
    for (const auto& b : e->bindings) unguarded_refs(b.body.get(), out);
  }

  void report_unguarded_recursion() {
    std::map<std::string, std::set<std::string>> edges;
    std::map<std::string, int> lines;
    for (const auto& d : script_.definitions) {
      unguarded_refs(d.body.get(), edges[d.name]);
      lines.emplace(d.name, d.line);
    }
    for (const auto& d : script_.definitions) {
      // DFS: can d reach itself through unguarded edges only?
      std::set<std::string> visited;
      std::vector<std::string> stack(edges[d.name].begin(),
                                     edges[d.name].end());
      bool cyclic = edges[d.name].count(d.name) != 0;
      while (!cyclic && !stack.empty()) {
        const std::string cur = stack.back();
        stack.pop_back();
        if (!visited.insert(cur).second) continue;
        if (cur == d.name) break;
        for (const auto& next : edges[cur]) {
          if (next == d.name) {
            cyclic = true;
            break;
          }
          stack.push_back(next);
        }
      }
      if (cyclic) {
        sink_.add(std::string(kRuleCspmUnguardedRecursion), Severity::Warning,
                  file_, Span{d.line, 1, int(d.name.size())},
                  "process '" + d.name +
                      "' can recurse without an intervening event prefix");
      }
    }
  }

  // --- S005: static refinement vacuity ---------------------------------------

  /// Channels syntactically reachable from `e`, following definition
  /// references transitively (shared with cspm_reach).
  std::set<std::string> reachable_channels(const Expr* e) const {
    return reachable_cspm_channels(script_, e);
  }

  void report_vacuous_assertions() {
    for (const auto& a : script_.assertions) {
      if (a.kind != AssertionAst::Kind::RefinesT &&
          a.kind != AssertionAst::Kind::RefinesF &&
          a.kind != AssertionAst::Kind::RefinesFD) {
        continue;
      }
      const std::set<std::string> spec = reachable_channels(a.lhs.get());
      const std::set<std::string> impl = reachable_channels(a.rhs.get());
      if (spec.empty() || impl.empty()) continue;
      bool disjoint = true;
      for (const auto& c : spec) {
        if (impl.count(c)) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) {
        sink_.add(std::string(kRuleCspmVacuousRefinement), Severity::Warning,
                  file_, Span{a.line, 1, 1},
                  "refinement is potentially vacuous: the implementation "
                  "shares no channel with the specification (spec uses '" +
                      *spec.begin() + "', impl does not)");
      }
    }
  }

  const Script& script_;
  const std::string& file_;
  DiagnosticSink& sink_;

  std::set<std::string> channels_;
  std::set<std::string> types_;
  std::set<std::string> ctors_;
  std::set<std::string> defs_;
};

}  // namespace

void lint_cspm(const cspm::Script& script, const std::string& file,
               DiagnosticSink& sink) {
  CspmLinter(script, file, sink).run();
}

}  // namespace ecucsp::lint
