#include "lint/cspm_reach.hpp"

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "lint/dataflow.hpp"

namespace ecucsp::lint {

EventSet reachable_events_over(Context& ctx, ProcessRef p) {
  // Discover every distinct term reachable from p, expanding Var through
  // the (memoised) environment. Hash-consing makes ProcessRef identity
  // structural identity, so the index is exact.
  std::vector<ProcessRef> nodes{p};
  std::unordered_map<ProcessRef, std::size_t> index{{p, 0}};
  std::vector<std::vector<std::size_t>> kids_of;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ProcessRef q = nodes[i];
    std::vector<ProcessRef> kids;
    if (q->op() == Op::Var) {
      kids.push_back(ctx.resolve(q->var_name(), q->var_args()));
    } else {
      for (std::size_t k = 0; k < q->kid_count(); ++k) {
        kids.push_back(q->kid(k));
      }
    }
    std::vector<std::size_t> ki;
    ki.reserve(kids.size());
    for (const ProcessRef k : kids) {
      const auto [it, fresh] = index.emplace(k, nodes.size());
      if (fresh) nodes.push_back(k);
      ki.push_back(it->second);
    }
    kids_of.push_back(std::move(ki));
  }

  // R is monotone in every operand (union / set-minus-constant / pointwise
  // rename), so the equation system has a least fixpoint the generic solver
  // reaches. deps_of[i] = parents that must be re-evaluated when R(i) grows.
  std::vector<std::vector<std::size_t>> parents_of(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const std::size_t k : kids_of[i]) parents_of[k].push_back(i);
  }

  const auto join = [](EventSet& into, const EventSet& from) {
    const std::size_t before = into.size();
    into = into.set_union(from);
    return into.size() != before;
  };

  const auto eval = [&](std::size_t i,
                        const std::vector<EventSet>& r) -> EventSet {
    const ProcessRef q = nodes[i];
    const auto union_of_kids = [&] {
      EventSet out;
      for (const std::size_t k : kids_of[i]) out = out.set_union(r[k]);
      return out;
    };
    switch (q->op()) {
      case Op::Stop:
      case Op::Omega:
        return {};
      case Op::Skip:
        return EventSet{TICK};
      case Op::Prefix: {
        EventSet out = r[kids_of[i][0]];
        out.insert(q->event());
        return out;
      }
      case Op::ExtChoice:
      case Op::IntChoice:
      case Op::Seq:
      case Op::Par:
      case Op::Interrupt:
      case Op::Sliding:
        return union_of_kids();
      case Op::Hide:
        return r[kids_of[i][0]].set_difference(q->events());
      case Op::Rename: {
        EventSet out;
        for (const EventId e : r[kids_of[i][0]]) {
          bool renamed = false;
          for (const RenamePair& pair : q->renaming()) {
            if (pair.from == e) {
              out.insert(pair.to);
              renamed = true;
            }
          }
          if (!renamed) out.insert(e);
        }
        return out;
      }
      case Op::Var:
        return r[kids_of[i][0]];
    }
    return {};
  };

  const std::vector<EventSet> r =
      solve_equations<EventSet>(nodes.size(), parents_of, join, eval);
  return r[0].set_difference(EventSet{TAU});
}

void collect_cspm_names(const cspm::Expr* e, std::set<std::string>& out) {
  if (!e) return;
  if (e->kind == cspm::ExprKind::Name || e->kind == cspm::ExprKind::Call) {
    out.insert(e->name);
  }
  for (const auto& kid : e->kids) collect_cspm_names(kid.get(), out);
  collect_cspm_names(e->head.get(), out);
  for (const auto& f : e->fields) {
    collect_cspm_names(f.restriction.get(), out);
    collect_cspm_names(f.expr.get(), out);
  }
  for (const auto& g : e->gens) collect_cspm_names(g.set.get(), out);
  for (const auto& r : e->renames) {
    collect_cspm_names(r.from.get(), out);
    collect_cspm_names(r.to.get(), out);
  }
  for (const auto& b : e->bindings) collect_cspm_names(b.body.get(), out);
}

std::set<std::string> reachable_cspm_channels(const cspm::Script& script,
                                              const cspm::Expr* e) {
  std::set<std::string> channels;
  for (const auto& c : script.channels) {
    for (const auto& n : c.names) channels.insert(n);
  }
  std::set<std::string> defs;
  for (const auto& d : script.definitions) defs.insert(d.name);

  std::set<std::string> names;
  collect_cspm_names(e, names);
  std::vector<std::string> work(names.begin(), names.end());
  std::set<std::string> seen_defs;
  while (!work.empty()) {
    const std::string cur = work.back();
    work.pop_back();
    if (!defs.count(cur) || !seen_defs.insert(cur).second) continue;
    for (const auto& d : script.definitions) {
      if (d.name != cur) continue;
      std::set<std::string> inner;
      collect_cspm_names(d.body.get(), inner);
      for (const auto& n : inner) {
        if (names.insert(n).second) work.push_back(n);
      }
    }
  }
  std::set<std::string> chans;
  for (const auto& n : names) {
    if (channels.count(n)) chans.insert(n);
  }
  return chans;
}

}  // namespace ecucsp::lint
