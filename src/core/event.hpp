// Event identifiers and finite event sets.
//
// Events are interned per-Context to dense 32-bit ids so that the semantics
// and the checking engine work on integers. Two ids are reserved:
//   TAU  — the invisible internal action (hiding, internal choice)
//   TICK — successful termination (CSP's tick)
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace ecucsp {

using EventId = std::uint32_t;

inline constexpr EventId TAU = 0;
inline constexpr EventId TICK = 1;
inline constexpr EventId FIRST_USER_EVENT = 2;

inline bool is_visible(EventId e) { return e != TAU; }

/// An immutable-ish finite set of events, stored as a sorted unique vector.
/// Small and cache-friendly; supports the set algebra the semantics needs.
class EventSet {
 public:
  EventSet() = default;
  EventSet(std::initializer_list<EventId> events)
      : items_(events) {
    normalise();
  }
  explicit EventSet(std::vector<EventId> events) : items_(std::move(events)) {
    normalise();
  }

  bool contains(EventId e) const {
    return std::binary_search(items_.begin(), items_.end(), e);
  }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  void insert(EventId e) {
    auto it = std::lower_bound(items_.begin(), items_.end(), e);
    if (it == items_.end() || *it != e) items_.insert(it, e);
  }

  EventSet set_union(const EventSet& other) const {
    std::vector<EventId> out;
    out.reserve(items_.size() + other.items_.size());
    std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), std::back_inserter(out));
    return EventSet(std::move(out));
  }
  EventSet set_intersection(const EventSet& other) const {
    std::vector<EventId> out;
    std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                          other.items_.end(), std::back_inserter(out));
    return EventSet(std::move(out));
  }
  EventSet set_difference(const EventSet& other) const {
    std::vector<EventId> out;
    std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out));
    return EventSet(std::move(out));
  }
  bool subset_of(const EventSet& other) const {
    return std::includes(other.items_.begin(), other.items_.end(),
                         items_.begin(), items_.end());
  }
  bool intersects(const EventSet& other) const {
    auto a = items_.begin();
    auto b = other.items_.begin();
    while (a != items_.end() && b != other.items_.end()) {
      if (*a == *b) return true;
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
    return false;
  }

  const std::vector<EventId>& items() const { return items_; }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  bool operator==(const EventSet&) const = default;

  std::size_t hash() const {
    std::size_t seed = items_.size();
    for (EventId e : items_) {
      seed ^= e + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }

 private:
  void normalise() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<EventId> items_;
};

struct EventSetHash {
  std::size_t operator()(const EventSet& s) const { return s.hash(); }
};

}  // namespace ecucsp
