// Context: one self-contained CSP universe.
//
// A Context owns the symbol table, the channel/event interner, the process
// term arena (with hash-consing) and the environment of named process
// definitions, and implements the structural operational semantics
// (Context::transitions). Everything downstream — LTS compilation,
// normalisation, refinement checking, the CSPm evaluator, the CAPL model
// extractor — works against a Context.
//
// Threading contract — this is what makes src/verify's task-level
// parallelism lock-free:
//   * A Context is deliberately NOT thread-safe. Every method, including
//     const ones, may touch the interner/arena caches.
//   * One verification task = one Context, built and destroyed on the
//     worker thread that runs the task. Nothing that borrows from a
//     Context (ProcessRef, EventId, Counterexample, compiled Lts) may
//     outlive it or cross to another thread; flatten to plain strings
//     first (see verify::render).
//   * Run independent checks on independent Contexts. Two threads may each
//     own a Context; two threads must never share one, even read-only.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.hpp"
#include "core/process.hpp"
#include "core/value.hpp"

namespace ecucsp {

using ChannelId = std::uint32_t;

/// Declared channel: a name plus a finite domain per data field.
/// The full per-field domains let us enumerate {| c |} productions exactly
/// as CSPm does.
struct ChannelDecl {
  Symbol name = 0;
  std::vector<std::vector<Value>> field_domains;
};

/// Thrown on malformed models: unknown names, events outside a channel's
/// domain, or unguarded recursion (P = P with no intervening event).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

class Context {
 public:
  Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- symbols -----------------------------------------------------------
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  Symbol sym(std::string_view text) { return symbols_.intern(text); }

  // --- channels and events ----------------------------------------------
  /// Declare (or fetch, if identically re-declared) a channel.
  ChannelId channel(std::string_view name,
                    std::vector<std::vector<Value>> field_domains = {});
  std::optional<ChannelId> find_channel(std::string_view name) const;
  const ChannelDecl& channel_decl(ChannelId id) const { return channels_.at(id); }
  std::size_t channel_count() const { return channels_.size(); }

  /// Intern the event `chan.fields...`. Fields must lie in the declared
  /// domains (this catches typos in hand-built models early).
  EventId event(ChannelId chan, std::vector<Value> fields = {});
  /// Convenience: `event("send", {v})` by channel name.
  EventId event(std::string_view chan_name, std::vector<Value> fields = {});

  /// All events of the given channel(s): the CSPm production {| c |}.
  EventSet events_of(ChannelId chan) const;
  EventSet events_of(std::span<const ChannelId> chans) const;
  EventSet events_of(std::initializer_list<std::string_view> names) const;

  /// Every user event interned so far (Sigma, as currently known).
  EventSet alphabet() const;

  ChannelId event_channel(EventId e) const;
  const std::vector<Value>& event_fields(EventId e) const;
  /// "send.reqSw" style rendering; TAU -> "tau", TICK -> "tick".
  std::string event_name(EventId e) const;
  std::size_t event_count() const { return event_chan_.size(); }

  // --- process constructors (hash-consed) --------------------------------
  ProcessRef stop();
  ProcessRef skip();
  ProcessRef omega();
  ProcessRef prefix(EventId e, ProcessRef p);
  /// Fold a whole event sequence into nested prefixes: e1 -> e2 -> ... -> p.
  ProcessRef prefix_seq(std::span<const EventId> events, ProcessRef p);
  ProcessRef ext_choice(ProcessRef p, ProcessRef q);
  ProcessRef ext_choice(std::span<const ProcessRef> ps);  // STOP if empty
  ProcessRef int_choice(ProcessRef p, ProcessRef q);
  ProcessRef int_choice(std::span<const ProcessRef> ps);  // requires non-empty
  ProcessRef seq(ProcessRef p, ProcessRef q);
  ProcessRef par(ProcessRef p, EventSet sync, ProcessRef q);
  ProcessRef interleave(ProcessRef p, ProcessRef q);
  ProcessRef hide(ProcessRef p, EventSet hidden);
  ProcessRef rename(ProcessRef p, std::vector<RenamePair> pairs);
  /// P /\ Q: P runs, but any visible event of Q may interrupt it for good.
  ProcessRef interrupt(ProcessRef p, ProcessRef q);
  /// P [> Q (sliding choice / untimed timeout): P's visible events resolve
  /// to P, or the process silently slides to Q.
  ProcessRef sliding(ProcessRef p, ProcessRef q);
  ProcessRef var(Symbol name, std::vector<Value> args = {});
  ProcessRef var(std::string_view name, std::vector<Value> args = {});

  /// RUN(A): always willing to perform any event of A, forever.
  ProcessRef run(const EventSet& a);
  /// CHAOS(A) in the traces sense: may perform any of A or stop (via |~|).
  ProcessRef chaos(const EventSet& a);

  // --- named definitions --------------------------------------------------
  using DefBody = std::function<ProcessRef(Context&, std::span<const Value>)>;
  /// Define a (possibly parameterised) process. Bodies are evaluated lazily
  /// and memoised per argument tuple, so recursive definitions over finite
  /// argument domains terminate.
  void define(std::string_view name, DefBody body);
  void define(std::string_view name, ProcessRef body);
  bool has_definition(Symbol name) const { return defs_.contains(name); }
  /// Resolve Var(name, args) to its (memoised) body.
  ProcessRef resolve(Symbol name, const std::vector<Value>& args);

  // --- operational semantics ----------------------------------------------
  /// The outgoing transitions of `p` under CSP's firing rules; memoised.
  const std::vector<Transition>& transitions(ProcessRef p);
  /// Chase Var indirection so behaviourally identical states share identity.
  ProcessRef canonical(ProcessRef p);

  std::size_t arena_size() const { return arena_.size(); }

 private:
  ProcessRef intern(ProcessNode&& node);
  std::vector<Transition> compute_transitions(ProcessRef p);

  SymbolTable symbols_;

  std::vector<ChannelDecl> channels_;
  std::unordered_map<Symbol, ChannelId> channel_ids_;

  // Event interning: key is (channel, fields) hash -> candidate ids.
  struct EventKey {
    ChannelId chan;
    std::vector<Value> fields;
    bool operator==(const EventKey&) const = default;
  };
  struct EventKeyHash {
    std::size_t operator()(const EventKey& k) const {
      return hash_combine(k.chan, hash_values(k.fields));
    }
  };
  std::unordered_map<EventKey, EventId, EventKeyHash> event_ids_;
  std::vector<ChannelId> event_chan_;           // indexed by EventId
  std::vector<std::vector<Value>> event_fields_;  // indexed by EventId

  // Process arena + hash-consing.
  std::deque<ProcessNode> arena_;
  struct NodeHash {
    std::size_t operator()(const ProcessNode* n) const {
      return n->structural_hash();
    }
  };
  struct NodeEq {
    bool operator()(const ProcessNode* a, const ProcessNode* b) const;
  };
  std::unordered_set<const ProcessNode*, NodeHash, NodeEq> interned_;

  ProcessRef stop_ = nullptr;
  ProcessRef skip_ = nullptr;
  ProcessRef omega_ = nullptr;

  // Definitions and memoised resolutions.
  std::unordered_map<Symbol, DefBody> defs_;
  struct VarKey {
    Symbol name;
    std::vector<Value> args;
    bool operator==(const VarKey&) const = default;
  };
  struct VarKeyHash {
    std::size_t operator()(const VarKey& k) const {
      return hash_combine(k.name, hash_values(k.args));
    }
  };
  std::unordered_map<VarKey, ProcessRef, VarKeyHash> resolved_;
  std::unordered_set<VarKey, VarKeyHash> resolving_;  // cycle detection

  std::unordered_map<ProcessRef, std::vector<Transition>> transition_cache_;
  std::unordered_map<ProcessRef, ProcessRef> canonical_cache_;

  int run_counter_ = 0;  // fresh names for run()/chaos() definitions
};

}  // namespace ecucsp
