// Cooperative cancellation for long-running engine passes.
//
// One verification task = one CancelToken. The owner (the verify scheduler's
// worker, a CLI signal handler, a test) arms it with a deadline and/or flips
// the cancel flag from any thread; the engine's exploration loops poll it and
// unwind by throwing CheckCancelled. Nothing is ever killed preemptively: a
// timed-out pass aborts at its next poll, destructors run, and the worker
// thread survives to pick up the next task.
//
// Two poll flavours:
//   * poll_now() — checks the cancel flag and the deadline unconditionally.
//     Use at pass entry (an already-expired token must abort before any work)
//     and from contexts that need no throttling.
//   * poll()     — checks the cancel flag on every call but reads the clock
//     only every 64th call per thread (a thread_local counter), so it is
//     cheap enough for per-state exploration loops. A request_cancel() still
//     lands on the very next poll().
//
// The token is all-atomic and safe to share: set_deadline/set_timeout/
// request_cancel may race with polls from any number of engine threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>

namespace ecucsp {

/// Thrown by CancelToken polls (and propagated out of every engine pass)
/// when the task's deadline fired or a cancellation was requested.
class CheckCancelled : public std::exception {
 public:
  enum class Reason {
    Cancelled,          // request_cancel() — batch shutdown, ^C, test
    DeadlineExceeded,   // per-check timeout armed via set_timeout/set_deadline
  };

  explicit CheckCancelled(Reason reason) : reason_(reason) {}

  Reason reason() const noexcept { return reason_; }

  const char* what() const noexcept override {
    return reason_ == Reason::DeadlineExceeded ? "check deadline exceeded"
                                               : "check cancelled";
  }

 private:
  Reason reason_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  // Atomics make the token neither copyable nor movable; containers of
  // tokens (the scheduler's per-batch vector) are sized up front.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arm (or re-arm) an absolute deadline. Monotonic clock only.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Arm a deadline `budget` from now.
  void set_timeout(Clock::duration budget) {
    set_deadline(Clock::now() + budget);
  }

  /// Flip the cancel flag; the next poll on any thread throws. Idempotent,
  /// callable from any thread (including signal-handler worker paths).
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Unthrottled check of both the cancel flag and the deadline. Keeps no
  /// per-thread state, so it is safe and deterministic from every worker.
  void poll_now() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      throw CheckCancelled(CheckCancelled::Reason::Cancelled);
    }
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoDeadline && Clock::now().time_since_epoch().count() >= d) {
      throw CheckCancelled(CheckCancelled::Reason::DeadlineExceeded);
    }
  }

  /// Exploration-loop poll: the cancel flag is checked on every call, the
  /// deadline only every 64th call per thread to keep clock reads off the
  /// hot path.
  void poll() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      throw CheckCancelled(CheckCancelled::Reason::Cancelled);
    }
    thread_local std::uint32_t polls = 0;
    if ((++polls & 0x3Fu) != 0) return;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoDeadline && Clock::now().time_since_epoch().count() >= d) {
      throw CheckCancelled(CheckCancelled::Reason::DeadlineExceeded);
    }
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace ecucsp
