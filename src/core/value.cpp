#include "core/value.hpp"

#include <functional>
#include <stdexcept>

namespace ecucsp {

Symbol SymbolTable::intern(std::string_view text) {
  auto it = ids_.find(std::string(text));
  if (it != ids_.end()) return it->second;
  const Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(text);
  ids_.emplace(names_.back(), id);
  return id;
}

Value Value::tuple(std::vector<Value> fields) {
  Value out;
  out.kind_ = Kind::Tuple;
  out.tuple_ = std::make_shared<const std::vector<Value>>(std::move(fields));
  return out;
}

std::int64_t Value::as_int() const {
  if (kind_ != Kind::Int) throw std::logic_error("Value::as_int on non-int");
  return scalar_;
}

Symbol Value::as_sym() const {
  if (kind_ != Kind::Sym) throw std::logic_error("Value::as_sym on non-symbol");
  return static_cast<Symbol>(scalar_);
}

const std::vector<Value>& Value::as_tuple() const {
  if (kind_ != Kind::Tuple) throw std::logic_error("Value::as_tuple on non-tuple");
  return *tuple_;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == Kind::Tuple) return *tuple_ == *other.tuple_;
  return scalar_ == other.scalar_;
}

std::strong_ordering Value::operator<=>(const Value& other) const {
  if (kind_ != other.kind_) return kind_ <=> other.kind_;
  if (kind_ != Kind::Tuple) return scalar_ <=> other.scalar_;
  const auto& a = *tuple_;
  const auto& b = *other.tuple_;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (auto cmp = a[i] <=> b[i]; cmp != std::strong_ordering::equal) return cmp;
  }
  return a.size() <=> b.size();
}

std::size_t Value::hash() const {
  std::size_t seed = static_cast<std::size_t>(kind_);
  if (kind_ != Kind::Tuple) {
    return hash_combine(seed, std::hash<std::int64_t>{}(scalar_));
  }
  for (const Value& v : *tuple_) seed = hash_combine(seed, v.hash());
  return hash_combine(seed, tuple_->size());
}

std::string Value::to_string(const SymbolTable& symbols) const {
  switch (kind_) {
    case Kind::Int:
      return std::to_string(scalar_);
    case Kind::Sym:
      return symbols.name(static_cast<Symbol>(scalar_));
    case Kind::Tuple: {
      std::string out = "<";
      bool first = true;
      for (const Value& v : *tuple_) {
        if (!first) out += ", ";
        first = false;
        out += v.to_string(symbols);
      }
      out += ">";
      return out;
    }
  }
  return "?";
}

std::size_t hash_values(const std::vector<Value>& vs) {
  std::size_t seed = vs.size();
  for (const Value& v : vs) seed = hash_combine(seed, v.hash());
  return seed;
}

}  // namespace ecucsp
