// The repo-wide seeded random stream: splitmix64.
//
// Three layers grew their own copy of the same mixer — sim::Environment's
// timing jitter, conformance suite generation, and the synthetic candump
// generator — which meant three places where a constant typo would silently
// change what a seed means. This header is now the single definition; the
// historical entry points (sim::Environment::rng, conform::splitmix64)
// delegate here, and tests/core_rng_test.cpp pins that every seeded trace,
// suite and log is byte-identical to the pre-factoring output.
//
// splitmix64 (Steele/Lea/Flood): tiny, deterministic, and independent of
// any std:: engine's implementation-defined behaviour, so streams are
// identical across platforms, standard libraries and build modes.
#pragma once

#include <cstdint>

namespace ecucsp::core {

/// Advance `state` by the golden-ratio increment and return the mixed
/// output. The state sequence is a plain counter, so streams never collide
/// with themselves and any seed gives a full 2^64 period.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The seed-to-state convention sim::Environment established: offset the
/// user seed by one splitmix64 increment so that seed 0 does not start the
/// counter at 0 (the all-zero state's first outputs are distinguishable).
/// Kept as a named helper so every layer that seeds a stream applies the
/// same convention.
inline std::uint64_t seed_state(std::uint64_t seed) {
  return seed + 0x9e3779b97f4a7c15ULL;
}

/// One-shot mix of a 64-bit value (a stateless splitmix64 step): the
/// repo-wide way to derive independent sub-seeds from (seed, index) pairs
/// without constructing a stream.
inline std::uint64_t mix64(std::uint64_t v) {
  return splitmix64(v);  // discards the advanced state, returns the mix
}

}  // namespace ecucsp::core
