#include "core/context.hpp"

#include <algorithm>

namespace ecucsp {

namespace {

std::size_t node_hash(const Op op, const EventId event,
                      const std::vector<ProcessRef>& kids,
                      const EventSet& events,
                      const std::vector<RenamePair>& renaming,
                      const Symbol var_name, const std::vector<Value>& args) {
  std::size_t seed = static_cast<std::size_t>(op);
  seed = hash_combine(seed, event);
  for (ProcessRef k : kids) {
    seed = hash_combine(seed, std::hash<const void*>{}(k));
  }
  seed = hash_combine(seed, events.hash());
  for (const RenamePair& rp : renaming) {
    seed = hash_combine(seed, hash_combine(rp.from, rp.to));
  }
  seed = hash_combine(seed, var_name);
  seed = hash_combine(seed, hash_values(args));
  return seed;
}

}  // namespace

bool Context::NodeEq::operator()(const ProcessNode* a,
                                 const ProcessNode* b) const {
  return a->op() == b->op() && a->event() == b->event() &&
         a->kid_count() == b->kid_count() &&
         std::equal(a->renaming().begin(), a->renaming().end(),
                    b->renaming().begin(), b->renaming().end()) &&
         a->events() == b->events() && a->var_name() == b->var_name() &&
         a->var_args() == b->var_args() &&
         [&] {
           for (std::size_t i = 0; i < a->kid_count(); ++i) {
             if (a->kid(i) != b->kid(i)) return false;
           }
           return true;
         }();
}

Context::Context() {
  // Reserve slots for TAU and TICK so EventId indexes line up.
  const ChannelId tau_chan = channel("_tau");
  const ChannelId tick_chan = channel("_tick");
  event_chan_.push_back(tau_chan);
  event_fields_.emplace_back();
  event_chan_.push_back(tick_chan);
  event_fields_.emplace_back();

  ProcessNode stop_node;
  stop_node.op_ = Op::Stop;
  stop_node.hash_ = node_hash(Op::Stop, 0, {}, {}, {}, 0, {});
  stop_ = intern(std::move(stop_node));

  ProcessNode skip_node;
  skip_node.op_ = Op::Skip;
  skip_node.hash_ = node_hash(Op::Skip, 0, {}, {}, {}, 0, {});
  skip_ = intern(std::move(skip_node));

  ProcessNode omega_node;
  omega_node.op_ = Op::Omega;
  omega_node.hash_ = node_hash(Op::Omega, 0, {}, {}, {}, 0, {});
  omega_ = intern(std::move(omega_node));
}

// --- channels and events ---------------------------------------------------

ChannelId Context::channel(std::string_view name,
                           std::vector<std::vector<Value>> field_domains) {
  const Symbol s = sym(name);
  if (auto it = channel_ids_.find(s); it != channel_ids_.end()) {
    const ChannelDecl& existing = channels_[it->second];
    if (existing.field_domains != field_domains) {
      throw ModelError("channel '" + std::string(name) +
                       "' re-declared with a different type");
    }
    return it->second;
  }
  const ChannelId id = static_cast<ChannelId>(channels_.size());
  channels_.push_back(ChannelDecl{s, std::move(field_domains)});
  channel_ids_.emplace(s, id);
  return id;
}

std::optional<ChannelId> Context::find_channel(std::string_view name) const {
  for (ChannelId id = 0; id < channels_.size(); ++id) {
    if (symbols_.name(channels_[id].name) == name) return id;
  }
  return std::nullopt;
}

EventId Context::event(ChannelId chan, std::vector<Value> fields) {
  const ChannelDecl& decl = channels_.at(chan);
  if (fields.size() != decl.field_domains.size()) {
    throw ModelError("event on channel '" + symbols_.name(decl.name) +
                     "' has wrong arity: got " + std::to_string(fields.size()) +
                     ", expected " + std::to_string(decl.field_domains.size()));
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const auto& domain = decl.field_domains[i];
    if (std::find(domain.begin(), domain.end(), fields[i]) == domain.end()) {
      throw ModelError("value " + fields[i].to_string(symbols_) +
                       " outside the declared domain of field " +
                       std::to_string(i) + " of channel '" +
                       symbols_.name(decl.name) + "'");
    }
  }
  EventKey key{chan, fields};
  if (auto it = event_ids_.find(key); it != event_ids_.end()) return it->second;
  const EventId id = static_cast<EventId>(event_chan_.size());
  event_chan_.push_back(chan);
  event_fields_.push_back(std::move(fields));
  event_ids_.emplace(std::move(key), id);
  return id;
}

EventId Context::event(std::string_view chan_name, std::vector<Value> fields) {
  auto id = find_channel(chan_name);
  if (!id) {
    throw ModelError("unknown channel '" + std::string(chan_name) + "'");
  }
  return event(*id, std::move(fields));
}

EventSet Context::events_of(ChannelId chan) const {
  // Enumerate the full Cartesian product of the declared field domains.
  // Note: const_cast-free design would require event() to be non-interning;
  // instead we enumerate over *already interned* ids plus force-intern the
  // rest through a mutable helper. To keep events_of const and total, the
  // product is interned eagerly here via a const_cast on the interner only.
  auto& self = const_cast<Context&>(*this);
  const ChannelDecl& decl = channels_.at(chan);
  std::vector<EventId> out;
  std::vector<std::size_t> idx(decl.field_domains.size(), 0);
  for (;;) {
    std::vector<Value> fields;
    fields.reserve(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      fields.push_back(decl.field_domains[i][idx[i]]);
    }
    out.push_back(self.event(chan, std::move(fields)));
    // Odometer increment.
    std::size_t i = idx.size();
    while (i > 0) {
      --i;
      if (++idx[i] < decl.field_domains[i].size()) break;
      idx[i] = 0;
      if (i == 0) return EventSet(std::move(out));
    }
    if (idx.empty()) return EventSet(std::move(out));
  }
}

EventSet Context::events_of(std::span<const ChannelId> chans) const {
  EventSet out;
  for (ChannelId c : chans) out = out.set_union(events_of(c));
  return out;
}

EventSet Context::events_of(
    std::initializer_list<std::string_view> names) const {
  EventSet out;
  for (std::string_view n : names) {
    auto id = find_channel(n);
    if (!id) throw ModelError("unknown channel '" + std::string(n) + "'");
    out = out.set_union(events_of(*id));
  }
  return out;
}

EventSet Context::alphabet() const {
  std::vector<EventId> out;
  for (EventId e = FIRST_USER_EVENT; e < event_chan_.size(); ++e) {
    out.push_back(e);
  }
  return EventSet(std::move(out));
}

ChannelId Context::event_channel(EventId e) const { return event_chan_.at(e); }

const std::vector<Value>& Context::event_fields(EventId e) const {
  return event_fields_.at(e);
}

std::string Context::event_name(EventId e) const {
  if (e == TAU) return "tau";
  if (e == TICK) return "tick";
  const ChannelDecl& decl = channels_.at(event_chan_.at(e));
  std::string out = symbols_.name(decl.name);
  for (const Value& v : event_fields_.at(e)) {
    out += ".";
    out += v.to_string(symbols_);
  }
  return out;
}

// --- process constructors ----------------------------------------------------

ProcessRef Context::intern(ProcessNode&& node) {
  auto it = interned_.find(&node);
  if (it != interned_.end()) return *it;
  arena_.push_back(std::move(node));
  ProcessRef ref = &arena_.back();
  interned_.insert(ref);
  return ref;
}

ProcessRef Context::stop() { return stop_; }
ProcessRef Context::skip() { return skip_; }
ProcessRef Context::omega() { return omega_; }

ProcessRef Context::prefix(EventId e, ProcessRef p) {
  if (e == TAU || e == TICK) {
    throw ModelError("prefix on reserved event '" + event_name(e) + "'");
  }
  ProcessNode n;
  n.op_ = Op::Prefix;
  n.event_ = e;
  n.kids_ = {p};
  n.hash_ = node_hash(Op::Prefix, e, n.kids_, {}, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::prefix_seq(std::span<const EventId> events, ProcessRef p) {
  ProcessRef out = p;
  for (std::size_t i = events.size(); i > 0; --i) {
    out = prefix(events[i - 1], out);
  }
  return out;
}

ProcessRef Context::ext_choice(ProcessRef p, ProcessRef q) {
  // [] is commutative and idempotent; canonicalise operand order so that
  // P [] Q and Q [] P intern to the same node.
  if (p == q) return p;
  if (q < p) std::swap(p, q);
  ProcessNode n;
  n.op_ = Op::ExtChoice;
  n.kids_ = {p, q};
  n.hash_ = node_hash(Op::ExtChoice, 0, n.kids_, {}, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::ext_choice(std::span<const ProcessRef> ps) {
  if (ps.empty()) return stop();
  ProcessRef out = ps[0];
  for (std::size_t i = 1; i < ps.size(); ++i) out = ext_choice(out, ps[i]);
  return out;
}

ProcessRef Context::int_choice(ProcessRef p, ProcessRef q) {
  if (p == q) return p;
  if (q < p) std::swap(p, q);
  ProcessNode n;
  n.op_ = Op::IntChoice;
  n.kids_ = {p, q};
  n.hash_ = node_hash(Op::IntChoice, 0, n.kids_, {}, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::int_choice(std::span<const ProcessRef> ps) {
  if (ps.empty()) throw ModelError("empty internal choice");
  ProcessRef out = ps[0];
  for (std::size_t i = 1; i < ps.size(); ++i) out = int_choice(out, ps[i]);
  return out;
}

ProcessRef Context::seq(ProcessRef p, ProcessRef q) {
  ProcessNode n;
  n.op_ = Op::Seq;
  n.kids_ = {p, q};
  n.hash_ = node_hash(Op::Seq, 0, n.kids_, {}, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::par(ProcessRef p, EventSet sync, ProcessRef q) {
  if (sync.contains(TAU) || sync.contains(TICK)) {
    throw ModelError("parallel synchronisation set contains a reserved event");
  }
  ProcessNode n;
  n.op_ = Op::Par;
  n.kids_ = {p, q};
  n.events_ = std::move(sync);
  n.hash_ = node_hash(Op::Par, 0, n.kids_, n.events_, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::interleave(ProcessRef p, ProcessRef q) {
  return par(p, EventSet{}, q);
}

ProcessRef Context::hide(ProcessRef p, EventSet hidden) {
  if (hidden.contains(TICK)) {
    throw ModelError("cannot hide successful termination");
  }
  if (hidden.empty()) return p;
  ProcessNode n;
  n.op_ = Op::Hide;
  n.kids_ = {p};
  n.events_ = std::move(hidden);
  n.hash_ = node_hash(Op::Hide, 0, n.kids_, n.events_, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::rename(ProcessRef p, std::vector<RenamePair> pairs) {
  if (pairs.empty()) return p;
  std::sort(pairs.begin(), pairs.end(), [](const RenamePair& a, const RenamePair& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const RenamePair& rp : pairs) {
    if (rp.from <= TICK || rp.to <= TICK) {
      throw ModelError("renaming touches a reserved event");
    }
  }
  ProcessNode n;
  n.op_ = Op::Rename;
  n.kids_ = {p};
  n.renaming_ = std::move(pairs);
  n.hash_ = node_hash(Op::Rename, 0, n.kids_, {}, n.renaming_, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::interrupt(ProcessRef p, ProcessRef q) {
  ProcessNode n;
  n.op_ = Op::Interrupt;
  n.kids_ = {p, q};
  n.hash_ = node_hash(Op::Interrupt, 0, n.kids_, {}, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::sliding(ProcessRef p, ProcessRef q) {
  ProcessNode n;
  n.op_ = Op::Sliding;
  n.kids_ = {p, q};
  n.hash_ = node_hash(Op::Sliding, 0, n.kids_, {}, {}, 0, {});
  return intern(std::move(n));
}

ProcessRef Context::var(Symbol name, std::vector<Value> args) {
  ProcessNode n;
  n.op_ = Op::Var;
  n.var_name_ = name;
  n.var_args_ = std::move(args);
  n.hash_ = node_hash(Op::Var, 0, {}, {}, {}, name, n.var_args_);
  return intern(std::move(n));
}

ProcessRef Context::var(std::string_view name, std::vector<Value> args) {
  return var(sym(name), std::move(args));
}

ProcessRef Context::run(const EventSet& a) {
  const std::string name = "_RUN" + std::to_string(run_counter_++);
  const Symbol s = sym(name);
  define(name, [a, s](Context& ctx, std::span<const Value>) {
    std::vector<ProcessRef> branches;
    branches.reserve(a.size());
    for (EventId e : a) branches.push_back(ctx.prefix(e, ctx.var(s)));
    return ctx.ext_choice(branches);
  });
  return var(s);
}

ProcessRef Context::chaos(const EventSet& a) {
  const std::string name = "_CHAOS" + std::to_string(run_counter_++);
  const Symbol s = sym(name);
  define(name, [a, s](Context& ctx, std::span<const Value>) {
    std::vector<ProcessRef> branches;
    branches.push_back(ctx.stop());
    for (EventId e : a) branches.push_back(ctx.prefix(e, ctx.var(s)));
    return ctx.int_choice(branches);
  });
  return var(s);
}

// --- named definitions --------------------------------------------------------

void Context::define(std::string_view name, DefBody body) {
  const Symbol s = sym(name);
  defs_[s] = std::move(body);
  // Invalidate memoised resolutions of this name (redefinition in tests).
  std::erase_if(resolved_, [s](const auto& kv) { return kv.first.name == s; });
}

void Context::define(std::string_view name, ProcessRef body) {
  define(name, [body](Context&, std::span<const Value>) { return body; });
}

ProcessRef Context::resolve(Symbol name, const std::vector<Value>& args) {
  VarKey key{name, args};
  if (auto it = resolved_.find(key); it != resolved_.end()) return it->second;
  auto def = defs_.find(name);
  if (def == defs_.end()) {
    throw ModelError("undefined process '" + symbols_.name(name) + "'");
  }
  ProcessRef body = def->second(*this, std::span<const Value>(args));
  resolved_.emplace(std::move(key), body);
  return body;
}

ProcessRef Context::canonical(ProcessRef p) {
  if (p->op() != Op::Var) return p;
  if (auto it = canonical_cache_.find(p); it != canonical_cache_.end()) {
    return it->second;
  }
  ProcessRef cur = p;
  std::vector<ProcessRef> chain;
  while (cur->op() == Op::Var) {
    if (std::find(chain.begin(), chain.end(), cur) != chain.end()) {
      throw ModelError("unguarded recursion through '" +
                       symbols_.name(cur->var_name()) + "'");
    }
    chain.push_back(cur);
    cur = resolve(cur->var_name(), cur->var_args());
  }
  for (ProcessRef link : chain) canonical_cache_.emplace(link, cur);
  return cur;
}

// --- operational semantics -----------------------------------------------------

const std::vector<Transition>& Context::transitions(ProcessRef p) {
  if (auto it = transition_cache_.find(p); it != transition_cache_.end()) {
    return it->second;
  }
  auto [it, inserted] = transition_cache_.emplace(p, compute_transitions(p));
  (void)inserted;
  return it->second;
}

std::vector<Transition> Context::compute_transitions(ProcessRef p) {
  std::vector<Transition> out;
  switch (p->op()) {
    case Op::Stop:
    case Op::Omega:
      break;

    case Op::Skip:
      out.push_back({TICK, omega()});
      break;

    case Op::Prefix:
      out.push_back({p->event(), p->kid(0)});
      break;

    case Op::ExtChoice: {
      // tau moves keep the choice pending; visible events and tick resolve it.
      ProcessRef l = p->kid(0);
      ProcessRef r = p->kid(1);
      for (const Transition& t : transitions(l)) {
        if (t.event == TAU) {
          out.push_back({TAU, ext_choice(t.target, r)});
        } else {
          out.push_back(t);
        }
      }
      for (const Transition& t : transitions(r)) {
        if (t.event == TAU) {
          out.push_back({TAU, ext_choice(l, t.target)});
        } else {
          out.push_back(t);
        }
      }
      break;
    }

    case Op::IntChoice:
      out.push_back({TAU, p->kid(0)});
      out.push_back({TAU, p->kid(1)});
      break;

    case Op::Seq: {
      // P;Q runs P; P's successful termination becomes an internal handover.
      ProcessRef l = p->kid(0);
      ProcessRef r = p->kid(1);
      for (const Transition& t : transitions(l)) {
        if (t.event == TICK) {
          out.push_back({TAU, r});
        } else {
          out.push_back({t.event, seq(t.target, r)});
        }
      }
      break;
    }

    case Op::Par: {
      ProcessRef l = p->kid(0);
      ProcessRef r = p->kid(1);
      const EventSet& sync = p->events();
      // Distributed termination (Roscoe's Omega rule): each side's tick
      // retires that side; the composition ticks once both have retired.
      if (l->op() == Op::Omega && r->op() == Op::Omega) {
        out.push_back({TICK, omega()});
        break;
      }
      const auto& lt = transitions(l);
      const auto& rt = transitions(r);
      for (const Transition& t : lt) {
        if (t.event == TICK) {
          out.push_back({TAU, par(omega(), sync, r)});
        } else if (t.event == TAU || !sync.contains(t.event)) {
          out.push_back({t.event, par(t.target, sync, r)});
        }
      }
      for (const Transition& t : rt) {
        if (t.event == TICK) {
          out.push_back({TAU, par(l, sync, omega())});
        } else if (t.event == TAU || !sync.contains(t.event)) {
          out.push_back({t.event, par(l, sync, t.target)});
        }
      }
      // Synchronised events: both sides must fire together.
      for (const Transition& a : lt) {
        if (a.event == TAU || a.event == TICK || !sync.contains(a.event)) {
          continue;
        }
        for (const Transition& b : rt) {
          if (b.event != a.event) continue;
          out.push_back({a.event, par(a.target, sync, b.target)});
        }
      }
      break;
    }

    case Op::Hide: {
      const EventSet& hidden = p->events();
      for (const Transition& t : transitions(p->kid(0))) {
        const EventId e = hidden.contains(t.event) ? TAU : t.event;
        out.push_back({e, hide(t.target, hidden)});
      }
      break;
    }

    case Op::Rename: {
      const auto& pairs = p->renaming();
      for (const Transition& t : transitions(p->kid(0))) {
        ProcessRef wrapped = rename(t.target, pairs);
        if (t.event == TAU || t.event == TICK) {
          out.push_back({t.event, wrapped});
          continue;
        }
        bool mapped = false;
        for (const RenamePair& rp : pairs) {
          if (rp.from == t.event) {
            out.push_back({rp.to, wrapped});
            mapped = true;
          }
        }
        if (!mapped) out.push_back({t.event, wrapped});
      }
      break;
    }

    case Op::Interrupt: {
      // P's behaviour continues under the interrupt; any visible event of Q
      // transfers control permanently. Q's taus keep the interrupt armed.
      ProcessRef l = p->kid(0);
      ProcessRef r = p->kid(1);
      for (const Transition& t : transitions(l)) {
        if (t.event == TICK) {
          out.push_back({TICK, t.target});  // successful termination wins
        } else {
          out.push_back({t.event, interrupt(t.target, r)});
        }
      }
      for (const Transition& t : transitions(r)) {
        if (t.event == TAU) {
          out.push_back({TAU, interrupt(l, t.target)});
        } else {
          out.push_back(t);
        }
      }
      break;
    }

    case Op::Sliding: {
      // P [> Q: P's visible behaviour resolves the choice; an internal
      // transition may discard P in favour of Q at any moment.
      ProcessRef l = p->kid(0);
      ProcessRef r = p->kid(1);
      for (const Transition& t : transitions(l)) {
        if (t.event == TAU) {
          out.push_back({TAU, sliding(t.target, r)});
        } else {
          out.push_back(t);
        }
      }
      out.push_back({TAU, r});
      break;
    }

    case Op::Var: {
      VarKey key{p->var_name(), p->var_args()};
      if (!resolving_.insert(key).second) {
        throw ModelError("unguarded recursion through '" +
                         symbols_.name(p->var_name()) + "'");
      }
      ProcessRef body = resolve(p->var_name(), p->var_args());
      out = transitions(body);
      resolving_.erase(key);
      break;
    }
  }
  // Deduplicate identical transitions (hash-consing makes targets comparable).
  std::sort(out.begin(), out.end(), [](const Transition& a, const Transition& b) {
    return std::tie(a.event, a.target) < std::tie(b.event, b.target);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Transition& a, const Transition& b) {
                          return a.event == b.event && a.target == b.target;
                        }),
            out.end());
  return out;
}

}  // namespace ecucsp
