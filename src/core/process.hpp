// Hash-consed CSP process terms.
//
// Process terms are immutable DAG nodes owned by a Context arena. Structural
// hash-consing guarantees that structurally equal terms are pointer-equal,
// which makes state identity during LTS exploration O(1) and gives the
// visited-set maximal hit rates (see bench/bench_refinement_scaling).
//
// The operator set follows the paper's Section IV-A syntax:
//   Stop | e -> P | P [] Q | P |~| Q | P ; Q | P [|A|] Q | P ||| Q
// plus SKIP, hiding, renaming, and named (possibly parameterised) recursion,
// which the CSPm front end and the model extractor both need.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/event.hpp"
#include "core/value.hpp"

namespace ecucsp {

class ProcessNode;
/// Non-owning handle to an arena-allocated, hash-consed process term.
/// Pointer equality is structural equality.
using ProcessRef = const ProcessNode*;

enum class Op : std::uint8_t {
  Stop,       // deadlock
  Skip,       // immediate successful termination
  Omega,      // terminated component (target of tick); no transitions
  Prefix,     // event -> kid0
  ExtChoice,  // kid0 [] kid1
  IntChoice,  // kid0 |~| kid1
  Seq,        // kid0 ; kid1
  Par,        // kid0 [| events |] kid1   (interleaving == empty sync set)
  Hide,       // kid0 \ events
  Rename,     // kid0 [[ renaming ]]
  Interrupt,  // kid0 /\ kid1: kid1's visible events may take over at any time
  Sliding,    // kid0 [> kid1: kid0 may be timed out by an internal slide to kid1
  Var,        // named reference, resolved through the Context environment
};

/// One functional renaming pair: occurrences of `from` become `to`.
struct RenamePair {
  EventId from = 0;
  EventId to = 0;
  bool operator==(const RenamePair&) const = default;
};

class ProcessNode {
 public:
  Op op() const { return op_; }
  EventId event() const { return event_; }
  ProcessRef kid(std::size_t i) const { return kids_.at(i); }
  std::size_t kid_count() const { return kids_.size(); }
  const EventSet& events() const { return events_; }
  const std::vector<RenamePair>& renaming() const { return renaming_; }
  Symbol var_name() const { return var_name_; }
  const std::vector<Value>& var_args() const { return var_args_; }

  std::size_t structural_hash() const { return hash_; }

 private:
  friend class Context;

  Op op_ = Op::Stop;
  EventId event_ = 0;                  // Prefix
  std::vector<ProcessRef> kids_;       // operands
  EventSet events_;                    // Par sync set / Hide set
  std::vector<RenamePair> renaming_;   // Rename
  Symbol var_name_ = 0;                // Var
  std::vector<Value> var_args_;        // Var
  std::size_t hash_ = 0;               // precomputed structural hash
};

/// A single step of the operational semantics.
struct Transition {
  EventId event = 0;
  ProcessRef target = nullptr;
};

}  // namespace ecucsp
