// Interned symbols and structured values carried by CSP events.
//
// CSPm events are channel names applied to zero or more data fields
// ("send.reqSw.mac0"). Fields are Values: integers, interned symbols
// (datatype constructors, agent names, keys) or tuples (compound payloads
// such as enc(k, <na, a>) used by the protocol models in src/security).
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ecucsp {

/// Interned string id. Symbols are owned by a SymbolTable (one per Context).
using Symbol = std::uint32_t;

/// Append-only string interner. Symbol ids are dense and stable.
class SymbolTable {
 public:
  Symbol intern(std::string_view text);
  const std::string& name(Symbol id) const { return names_.at(id); }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
};

/// An immutable datum carried in an event field: integer, symbol, or tuple.
/// Values are cheap to copy (tuples share their storage) and totally ordered
/// so they can key maps and be enumerated deterministically.
class Value {
 public:
  enum class Kind : std::uint8_t { Int, Sym, Tuple };

  Value() : kind_(Kind::Int), scalar_(0) {}

  static Value integer(std::int64_t v) {
    Value out;
    out.kind_ = Kind::Int;
    out.scalar_ = v;
    return out;
  }
  static Value symbol(Symbol s) {
    Value out;
    out.kind_ = Kind::Sym;
    out.scalar_ = static_cast<std::int64_t>(s);
    return out;
  }
  static Value tuple(std::vector<Value> fields);

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_sym() const { return kind_ == Kind::Sym; }
  bool is_tuple() const { return kind_ == Kind::Tuple; }

  std::int64_t as_int() const;
  Symbol as_sym() const;
  const std::vector<Value>& as_tuple() const;

  bool operator==(const Value& other) const;
  std::strong_ordering operator<=>(const Value& other) const;

  std::size_t hash() const;

  /// Render for diagnostics: ints as digits, symbols via the table,
  /// tuples as "<a, b>".
  std::string to_string(const SymbolTable& symbols) const;

 private:
  Kind kind_;
  std::int64_t scalar_;  // Int payload, or Symbol id widened
  std::shared_ptr<const std::vector<Value>> tuple_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

/// Combine hashes (boost-style).
inline std::size_t hash_combine(std::size_t seed, std::size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::size_t hash_values(const std::vector<Value>& vs);

}  // namespace ecucsp
