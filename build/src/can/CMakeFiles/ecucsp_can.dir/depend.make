# Empty dependencies file for ecucsp_can.
# This may be replaced when dependencies are built.
