file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_can.dir/asc.cpp.o"
  "CMakeFiles/ecucsp_can.dir/asc.cpp.o.d"
  "CMakeFiles/ecucsp_can.dir/bus.cpp.o"
  "CMakeFiles/ecucsp_can.dir/bus.cpp.o.d"
  "CMakeFiles/ecucsp_can.dir/dbc.cpp.o"
  "CMakeFiles/ecucsp_can.dir/dbc.cpp.o.d"
  "CMakeFiles/ecucsp_can.dir/frame.cpp.o"
  "CMakeFiles/ecucsp_can.dir/frame.cpp.o.d"
  "CMakeFiles/ecucsp_can.dir/signal.cpp.o"
  "CMakeFiles/ecucsp_can.dir/signal.cpp.o.d"
  "libecucsp_can.a"
  "libecucsp_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
