file(REMOVE_RECURSE
  "libecucsp_can.a"
)
