
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/asc.cpp" "src/can/CMakeFiles/ecucsp_can.dir/asc.cpp.o" "gcc" "src/can/CMakeFiles/ecucsp_can.dir/asc.cpp.o.d"
  "/root/repo/src/can/bus.cpp" "src/can/CMakeFiles/ecucsp_can.dir/bus.cpp.o" "gcc" "src/can/CMakeFiles/ecucsp_can.dir/bus.cpp.o.d"
  "/root/repo/src/can/dbc.cpp" "src/can/CMakeFiles/ecucsp_can.dir/dbc.cpp.o" "gcc" "src/can/CMakeFiles/ecucsp_can.dir/dbc.cpp.o.d"
  "/root/repo/src/can/frame.cpp" "src/can/CMakeFiles/ecucsp_can.dir/frame.cpp.o" "gcc" "src/can/CMakeFiles/ecucsp_can.dir/frame.cpp.o.d"
  "/root/repo/src/can/signal.cpp" "src/can/CMakeFiles/ecucsp_can.dir/signal.cpp.o" "gcc" "src/can/CMakeFiles/ecucsp_can.dir/signal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
