file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_refine.dir/check.cpp.o"
  "CMakeFiles/ecucsp_refine.dir/check.cpp.o.d"
  "CMakeFiles/ecucsp_refine.dir/dot.cpp.o"
  "CMakeFiles/ecucsp_refine.dir/dot.cpp.o.d"
  "CMakeFiles/ecucsp_refine.dir/lts.cpp.o"
  "CMakeFiles/ecucsp_refine.dir/lts.cpp.o.d"
  "CMakeFiles/ecucsp_refine.dir/minimize.cpp.o"
  "CMakeFiles/ecucsp_refine.dir/minimize.cpp.o.d"
  "CMakeFiles/ecucsp_refine.dir/normalize.cpp.o"
  "CMakeFiles/ecucsp_refine.dir/normalize.cpp.o.d"
  "libecucsp_refine.a"
  "libecucsp_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
