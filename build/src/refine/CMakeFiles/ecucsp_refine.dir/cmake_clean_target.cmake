file(REMOVE_RECURSE
  "libecucsp_refine.a"
)
