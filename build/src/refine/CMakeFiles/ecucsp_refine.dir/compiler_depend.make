# Empty compiler generated dependencies file for ecucsp_refine.
# This may be replaced when dependencies are built.
