
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/refine/check.cpp" "src/refine/CMakeFiles/ecucsp_refine.dir/check.cpp.o" "gcc" "src/refine/CMakeFiles/ecucsp_refine.dir/check.cpp.o.d"
  "/root/repo/src/refine/dot.cpp" "src/refine/CMakeFiles/ecucsp_refine.dir/dot.cpp.o" "gcc" "src/refine/CMakeFiles/ecucsp_refine.dir/dot.cpp.o.d"
  "/root/repo/src/refine/lts.cpp" "src/refine/CMakeFiles/ecucsp_refine.dir/lts.cpp.o" "gcc" "src/refine/CMakeFiles/ecucsp_refine.dir/lts.cpp.o.d"
  "/root/repo/src/refine/minimize.cpp" "src/refine/CMakeFiles/ecucsp_refine.dir/minimize.cpp.o" "gcc" "src/refine/CMakeFiles/ecucsp_refine.dir/minimize.cpp.o.d"
  "/root/repo/src/refine/normalize.cpp" "src/refine/CMakeFiles/ecucsp_refine.dir/normalize.cpp.o" "gcc" "src/refine/CMakeFiles/ecucsp_refine.dir/normalize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecucsp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
