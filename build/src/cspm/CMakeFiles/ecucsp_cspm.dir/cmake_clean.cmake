file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_cspm.dir/eval.cpp.o"
  "CMakeFiles/ecucsp_cspm.dir/eval.cpp.o.d"
  "CMakeFiles/ecucsp_cspm.dir/lexer.cpp.o"
  "CMakeFiles/ecucsp_cspm.dir/lexer.cpp.o.d"
  "CMakeFiles/ecucsp_cspm.dir/parser.cpp.o"
  "CMakeFiles/ecucsp_cspm.dir/parser.cpp.o.d"
  "CMakeFiles/ecucsp_cspm.dir/printer.cpp.o"
  "CMakeFiles/ecucsp_cspm.dir/printer.cpp.o.d"
  "libecucsp_cspm.a"
  "libecucsp_cspm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_cspm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
