file(REMOVE_RECURSE
  "libecucsp_cspm.a"
)
