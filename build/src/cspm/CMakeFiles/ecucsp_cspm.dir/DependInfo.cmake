
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cspm/eval.cpp" "src/cspm/CMakeFiles/ecucsp_cspm.dir/eval.cpp.o" "gcc" "src/cspm/CMakeFiles/ecucsp_cspm.dir/eval.cpp.o.d"
  "/root/repo/src/cspm/lexer.cpp" "src/cspm/CMakeFiles/ecucsp_cspm.dir/lexer.cpp.o" "gcc" "src/cspm/CMakeFiles/ecucsp_cspm.dir/lexer.cpp.o.d"
  "/root/repo/src/cspm/parser.cpp" "src/cspm/CMakeFiles/ecucsp_cspm.dir/parser.cpp.o" "gcc" "src/cspm/CMakeFiles/ecucsp_cspm.dir/parser.cpp.o.d"
  "/root/repo/src/cspm/printer.cpp" "src/cspm/CMakeFiles/ecucsp_cspm.dir/printer.cpp.o" "gcc" "src/cspm/CMakeFiles/ecucsp_cspm.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecucsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/refine/CMakeFiles/ecucsp_refine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
