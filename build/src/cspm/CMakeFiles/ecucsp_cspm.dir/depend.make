# Empty dependencies file for ecucsp_cspm.
# This may be replaced when dependencies are built.
