file(REMOVE_RECURSE
  "libecucsp_security.a"
)
