file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_security.dir/attack_tree.cpp.o"
  "CMakeFiles/ecucsp_security.dir/attack_tree.cpp.o.d"
  "CMakeFiles/ecucsp_security.dir/intruder.cpp.o"
  "CMakeFiles/ecucsp_security.dir/intruder.cpp.o.d"
  "CMakeFiles/ecucsp_security.dir/intruder_factored.cpp.o"
  "CMakeFiles/ecucsp_security.dir/intruder_factored.cpp.o.d"
  "CMakeFiles/ecucsp_security.dir/mac.cpp.o"
  "CMakeFiles/ecucsp_security.dir/mac.cpp.o.d"
  "CMakeFiles/ecucsp_security.dir/nspk.cpp.o"
  "CMakeFiles/ecucsp_security.dir/nspk.cpp.o.d"
  "CMakeFiles/ecucsp_security.dir/properties.cpp.o"
  "CMakeFiles/ecucsp_security.dir/properties.cpp.o.d"
  "CMakeFiles/ecucsp_security.dir/secoc.cpp.o"
  "CMakeFiles/ecucsp_security.dir/secoc.cpp.o.d"
  "CMakeFiles/ecucsp_security.dir/terms.cpp.o"
  "CMakeFiles/ecucsp_security.dir/terms.cpp.o.d"
  "libecucsp_security.a"
  "libecucsp_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
