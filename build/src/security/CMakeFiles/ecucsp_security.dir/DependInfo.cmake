
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/attack_tree.cpp" "src/security/CMakeFiles/ecucsp_security.dir/attack_tree.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/attack_tree.cpp.o.d"
  "/root/repo/src/security/intruder.cpp" "src/security/CMakeFiles/ecucsp_security.dir/intruder.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/intruder.cpp.o.d"
  "/root/repo/src/security/intruder_factored.cpp" "src/security/CMakeFiles/ecucsp_security.dir/intruder_factored.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/intruder_factored.cpp.o.d"
  "/root/repo/src/security/mac.cpp" "src/security/CMakeFiles/ecucsp_security.dir/mac.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/mac.cpp.o.d"
  "/root/repo/src/security/nspk.cpp" "src/security/CMakeFiles/ecucsp_security.dir/nspk.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/nspk.cpp.o.d"
  "/root/repo/src/security/properties.cpp" "src/security/CMakeFiles/ecucsp_security.dir/properties.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/properties.cpp.o.d"
  "/root/repo/src/security/secoc.cpp" "src/security/CMakeFiles/ecucsp_security.dir/secoc.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/secoc.cpp.o.d"
  "/root/repo/src/security/terms.cpp" "src/security/CMakeFiles/ecucsp_security.dir/terms.cpp.o" "gcc" "src/security/CMakeFiles/ecucsp_security.dir/terms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecucsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/refine/CMakeFiles/ecucsp_refine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
