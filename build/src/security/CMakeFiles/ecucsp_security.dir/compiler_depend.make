# Empty compiler generated dependencies file for ecucsp_security.
# This may be replaced when dependencies are built.
