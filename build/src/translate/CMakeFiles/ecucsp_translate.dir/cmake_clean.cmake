file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_translate.dir/conformance.cpp.o"
  "CMakeFiles/ecucsp_translate.dir/conformance.cpp.o.d"
  "CMakeFiles/ecucsp_translate.dir/dbc_to_cspm.cpp.o"
  "CMakeFiles/ecucsp_translate.dir/dbc_to_cspm.cpp.o.d"
  "CMakeFiles/ecucsp_translate.dir/extractor.cpp.o"
  "CMakeFiles/ecucsp_translate.dir/extractor.cpp.o.d"
  "CMakeFiles/ecucsp_translate.dir/stencil.cpp.o"
  "CMakeFiles/ecucsp_translate.dir/stencil.cpp.o.d"
  "libecucsp_translate.a"
  "libecucsp_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
