# Empty dependencies file for ecucsp_translate.
# This may be replaced when dependencies are built.
