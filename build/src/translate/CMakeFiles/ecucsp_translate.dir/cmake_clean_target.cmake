file(REMOVE_RECURSE
  "libecucsp_translate.a"
)
