# Empty dependencies file for ecucsp_core.
# This may be replaced when dependencies are built.
