file(REMOVE_RECURSE
  "libecucsp_core.a"
)
