file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_core.dir/context.cpp.o"
  "CMakeFiles/ecucsp_core.dir/context.cpp.o.d"
  "CMakeFiles/ecucsp_core.dir/value.cpp.o"
  "CMakeFiles/ecucsp_core.dir/value.cpp.o.d"
  "libecucsp_core.a"
  "libecucsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
