# Empty compiler generated dependencies file for ecucsp_ota.
# This may be replaced when dependencies are built.
