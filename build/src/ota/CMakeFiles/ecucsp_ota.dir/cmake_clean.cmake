file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_ota.dir/ota.cpp.o"
  "CMakeFiles/ecucsp_ota.dir/ota.cpp.o.d"
  "libecucsp_ota.a"
  "libecucsp_ota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
