file(REMOVE_RECURSE
  "libecucsp_ota.a"
)
