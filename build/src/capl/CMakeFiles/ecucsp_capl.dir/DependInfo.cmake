
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capl/interp.cpp" "src/capl/CMakeFiles/ecucsp_capl.dir/interp.cpp.o" "gcc" "src/capl/CMakeFiles/ecucsp_capl.dir/interp.cpp.o.d"
  "/root/repo/src/capl/lexer.cpp" "src/capl/CMakeFiles/ecucsp_capl.dir/lexer.cpp.o" "gcc" "src/capl/CMakeFiles/ecucsp_capl.dir/lexer.cpp.o.d"
  "/root/repo/src/capl/parser.cpp" "src/capl/CMakeFiles/ecucsp_capl.dir/parser.cpp.o" "gcc" "src/capl/CMakeFiles/ecucsp_capl.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/can/CMakeFiles/ecucsp_can.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecucsp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
