# Empty compiler generated dependencies file for ecucsp_capl.
# This may be replaced when dependencies are built.
