file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_capl.dir/interp.cpp.o"
  "CMakeFiles/ecucsp_capl.dir/interp.cpp.o.d"
  "CMakeFiles/ecucsp_capl.dir/lexer.cpp.o"
  "CMakeFiles/ecucsp_capl.dir/lexer.cpp.o.d"
  "CMakeFiles/ecucsp_capl.dir/parser.cpp.o"
  "CMakeFiles/ecucsp_capl.dir/parser.cpp.o.d"
  "libecucsp_capl.a"
  "libecucsp_capl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_capl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
