file(REMOVE_RECURSE
  "libecucsp_capl.a"
)
