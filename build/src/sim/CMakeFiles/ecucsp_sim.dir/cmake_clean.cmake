file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_sim.dir/environment.cpp.o"
  "CMakeFiles/ecucsp_sim.dir/environment.cpp.o.d"
  "CMakeFiles/ecucsp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/ecucsp_sim.dir/scheduler.cpp.o.d"
  "libecucsp_sim.a"
  "libecucsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
