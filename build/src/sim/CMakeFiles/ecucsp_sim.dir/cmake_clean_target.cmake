file(REMOVE_RECURSE
  "libecucsp_sim.a"
)
