# Empty dependencies file for ecucsp_sim.
# This may be replaced when dependencies are built.
