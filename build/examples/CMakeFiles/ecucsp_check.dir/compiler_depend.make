# Empty compiler generated dependencies file for ecucsp_check.
# This may be replaced when dependencies are built.
