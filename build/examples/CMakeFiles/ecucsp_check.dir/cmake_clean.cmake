file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_check.dir/ecucsp_check.cpp.o"
  "CMakeFiles/ecucsp_check.dir/ecucsp_check.cpp.o.d"
  "ecucsp_check"
  "ecucsp_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
