# Empty compiler generated dependencies file for can_simulation.
# This may be replaced when dependencies are built.
