file(REMOVE_RECURSE
  "CMakeFiles/can_simulation.dir/can_simulation.cpp.o"
  "CMakeFiles/can_simulation.dir/can_simulation.cpp.o.d"
  "can_simulation"
  "can_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
