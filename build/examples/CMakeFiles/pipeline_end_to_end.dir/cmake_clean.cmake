file(REMOVE_RECURSE
  "CMakeFiles/pipeline_end_to_end.dir/pipeline_end_to_end.cpp.o"
  "CMakeFiles/pipeline_end_to_end.dir/pipeline_end_to_end.cpp.o.d"
  "pipeline_end_to_end"
  "pipeline_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
