
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pipeline_end_to_end.cpp" "examples/CMakeFiles/pipeline_end_to_end.dir/pipeline_end_to_end.cpp.o" "gcc" "examples/CMakeFiles/pipeline_end_to_end.dir/pipeline_end_to_end.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/translate/CMakeFiles/ecucsp_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/cspm/CMakeFiles/ecucsp_cspm.dir/DependInfo.cmake"
  "/root/repo/build/src/ota/CMakeFiles/ecucsp_ota.dir/DependInfo.cmake"
  "/root/repo/build/src/capl/CMakeFiles/ecucsp_capl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecucsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/ecucsp_can.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/ecucsp_security.dir/DependInfo.cmake"
  "/root/repo/build/src/refine/CMakeFiles/ecucsp_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecucsp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
