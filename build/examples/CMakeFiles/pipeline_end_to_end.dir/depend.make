# Empty dependencies file for pipeline_end_to_end.
# This may be replaced when dependencies are built.
