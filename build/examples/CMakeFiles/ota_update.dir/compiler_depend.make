# Empty compiler generated dependencies file for ota_update.
# This may be replaced when dependencies are built.
