# Empty compiler generated dependencies file for needham_schroeder.
# This may be replaced when dependencies are built.
