file(REMOVE_RECURSE
  "CMakeFiles/needham_schroeder.dir/needham_schroeder.cpp.o"
  "CMakeFiles/needham_schroeder.dir/needham_schroeder.cpp.o.d"
  "needham_schroeder"
  "needham_schroeder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/needham_schroeder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
