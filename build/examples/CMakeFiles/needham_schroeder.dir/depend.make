# Empty dependencies file for needham_schroeder.
# This may be replaced when dependencies are built.
