file(REMOVE_RECURSE
  "CMakeFiles/ecucsp_extract.dir/ecucsp_extract.cpp.o"
  "CMakeFiles/ecucsp_extract.dir/ecucsp_extract.cpp.o.d"
  "ecucsp_extract"
  "ecucsp_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecucsp_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
