# Empty dependencies file for ecucsp_extract.
# This may be replaced when dependencies are built.
