# Empty compiler generated dependencies file for bench_attack_trees.
# This may be replaced when dependencies are built.
