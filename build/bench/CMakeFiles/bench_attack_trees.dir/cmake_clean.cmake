file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_trees.dir/bench_attack_trees.cpp.o"
  "CMakeFiles/bench_attack_trees.dir/bench_attack_trees.cpp.o.d"
  "bench_attack_trees"
  "bench_attack_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
