
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_attack_trees.cpp" "bench/CMakeFiles/bench_attack_trees.dir/bench_attack_trees.cpp.o" "gcc" "bench/CMakeFiles/bench_attack_trees.dir/bench_attack_trees.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/security/CMakeFiles/ecucsp_security.dir/DependInfo.cmake"
  "/root/repo/build/src/refine/CMakeFiles/ecucsp_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecucsp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
