file(REMOVE_RECURSE
  "CMakeFiles/bench_intruder_statespace.dir/bench_intruder_statespace.cpp.o"
  "CMakeFiles/bench_intruder_statespace.dir/bench_intruder_statespace.cpp.o.d"
  "bench_intruder_statespace"
  "bench_intruder_statespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intruder_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
