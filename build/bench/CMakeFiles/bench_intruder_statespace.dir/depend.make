# Empty dependencies file for bench_intruder_statespace.
# This may be replaced when dependencies are built.
