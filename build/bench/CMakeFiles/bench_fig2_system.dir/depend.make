# Empty dependencies file for bench_fig2_system.
# This may be replaced when dependencies are built.
