file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_translation.dir/bench_fig3_translation.cpp.o"
  "CMakeFiles/bench_fig3_translation.dir/bench_fig3_translation.cpp.o.d"
  "bench_fig3_translation"
  "bench_fig3_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
