# Empty dependencies file for bench_fig3_translation.
# This may be replaced when dependencies are built.
