file(REMOVE_RECURSE
  "CMakeFiles/bench_translation_scaling.dir/bench_translation_scaling.cpp.o"
  "CMakeFiles/bench_translation_scaling.dir/bench_translation_scaling.cpp.o.d"
  "bench_translation_scaling"
  "bench_translation_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translation_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
