# Empty compiler generated dependencies file for bench_translation_scaling.
# This may be replaced when dependencies are built.
