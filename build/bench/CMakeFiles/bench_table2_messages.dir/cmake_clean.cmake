file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_messages.dir/bench_table2_messages.cpp.o"
  "CMakeFiles/bench_table2_messages.dir/bench_table2_messages.cpp.o.d"
  "bench_table2_messages"
  "bench_table2_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
