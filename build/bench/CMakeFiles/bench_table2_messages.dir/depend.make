# Empty dependencies file for bench_table2_messages.
# This may be replaced when dependencies are built.
