# Empty dependencies file for bench_refinement_scaling.
# This may be replaced when dependencies are built.
