file(REMOVE_RECURSE
  "CMakeFiles/bench_refinement_scaling.dir/bench_refinement_scaling.cpp.o"
  "CMakeFiles/bench_refinement_scaling.dir/bench_refinement_scaling.cpp.o.d"
  "bench_refinement_scaling"
  "bench_refinement_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refinement_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
