# Empty dependencies file for bench_table1_notation.
# This may be replaced when dependencies are built.
