file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_notation.dir/bench_table1_notation.cpp.o"
  "CMakeFiles/bench_table1_notation.dir/bench_table1_notation.cpp.o.d"
  "bench_table1_notation"
  "bench_table1_notation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_notation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
