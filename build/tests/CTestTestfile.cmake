# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_value_test[1]_include.cmake")
include("/root/repo/build/tests/core_context_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/refine_laws_test[1]_include.cmake")
include("/root/repo/build/tests/cspm_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/cspm_parser_test[1]_include.cmake")
include("/root/repo/build/tests/cspm_eval_test[1]_include.cmake")
include("/root/repo/build/tests/can_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/capl_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/extractor_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/ota_test[1]_include.cmake")
include("/root/repo/build/tests/minimize_dot_test[1]_include.cmake")
