file(REMOVE_RECURSE
  "CMakeFiles/core_context_test.dir/core_context_test.cpp.o"
  "CMakeFiles/core_context_test.dir/core_context_test.cpp.o.d"
  "core_context_test"
  "core_context_test.pdb"
  "core_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
