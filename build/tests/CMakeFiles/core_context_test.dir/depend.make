# Empty dependencies file for core_context_test.
# This may be replaced when dependencies are built.
