# Empty compiler generated dependencies file for cspm_lexer_test.
# This may be replaced when dependencies are built.
