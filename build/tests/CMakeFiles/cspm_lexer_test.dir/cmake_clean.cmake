file(REMOVE_RECURSE
  "CMakeFiles/cspm_lexer_test.dir/cspm_lexer_test.cpp.o"
  "CMakeFiles/cspm_lexer_test.dir/cspm_lexer_test.cpp.o.d"
  "cspm_lexer_test"
  "cspm_lexer_test.pdb"
  "cspm_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cspm_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
