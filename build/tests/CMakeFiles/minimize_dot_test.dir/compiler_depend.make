# Empty compiler generated dependencies file for minimize_dot_test.
# This may be replaced when dependencies are built.
