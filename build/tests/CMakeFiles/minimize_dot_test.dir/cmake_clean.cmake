file(REMOVE_RECURSE
  "CMakeFiles/minimize_dot_test.dir/minimize_dot_test.cpp.o"
  "CMakeFiles/minimize_dot_test.dir/minimize_dot_test.cpp.o.d"
  "minimize_dot_test"
  "minimize_dot_test.pdb"
  "minimize_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimize_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
