file(REMOVE_RECURSE
  "CMakeFiles/ota_test.dir/ota_test.cpp.o"
  "CMakeFiles/ota_test.dir/ota_test.cpp.o.d"
  "ota_test"
  "ota_test.pdb"
  "ota_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
