# Empty compiler generated dependencies file for ota_test.
# This may be replaced when dependencies are built.
