# Empty dependencies file for ota_test.
# This may be replaced when dependencies are built.
