file(REMOVE_RECURSE
  "CMakeFiles/capl_test.dir/capl_test.cpp.o"
  "CMakeFiles/capl_test.dir/capl_test.cpp.o.d"
  "capl_test"
  "capl_test.pdb"
  "capl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
