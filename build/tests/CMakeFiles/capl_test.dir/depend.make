# Empty dependencies file for capl_test.
# This may be replaced when dependencies are built.
