# Empty compiler generated dependencies file for cspm_eval_test.
# This may be replaced when dependencies are built.
