file(REMOVE_RECURSE
  "CMakeFiles/cspm_eval_test.dir/cspm_eval_test.cpp.o"
  "CMakeFiles/cspm_eval_test.dir/cspm_eval_test.cpp.o.d"
  "cspm_eval_test"
  "cspm_eval_test.pdb"
  "cspm_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cspm_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
