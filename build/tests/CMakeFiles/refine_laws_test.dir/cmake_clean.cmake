file(REMOVE_RECURSE
  "CMakeFiles/refine_laws_test.dir/refine_laws_test.cpp.o"
  "CMakeFiles/refine_laws_test.dir/refine_laws_test.cpp.o.d"
  "refine_laws_test"
  "refine_laws_test.pdb"
  "refine_laws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refine_laws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
