file(REMOVE_RECURSE
  "CMakeFiles/cspm_parser_test.dir/cspm_parser_test.cpp.o"
  "CMakeFiles/cspm_parser_test.dir/cspm_parser_test.cpp.o.d"
  "cspm_parser_test"
  "cspm_parser_test.pdb"
  "cspm_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cspm_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
