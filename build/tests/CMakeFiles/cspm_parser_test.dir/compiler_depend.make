# Empty compiler generated dependencies file for cspm_parser_test.
# This may be replaced when dependencies are built.
